//! Property-based tests on the core algorithm machinery.

use proptest::prelude::*;
use srumma_core::driver::{multiply_threads, serial_reference};
use srumma_core::layout::{a_kparts, a_owner, b_kparts, b_owner};
use srumma_core::taskorder::{build_tasks, order_tasks};
use srumma_core::{Algorithm, GemmSpec};
use srumma_dense::{max_abs_diff, Matrix, Op};
use srumma_model::ProcGrid;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![Just(Op::N), Just(Op::T)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Tasks tile 0..k exactly and each fits inside one panel of each
    /// partition, for arbitrary k and partition counts.
    #[test]
    fn tasks_tile_k(k in 1usize..5000, a in 1usize..24, b in 1usize..24) {
        let tasks = build_tasks(k, a, b);
        let mut cursor = 0usize;
        for t in &tasks {
            prop_assert_eq!(t.k0, cursor);
            prop_assert!(t.k1 > t.k0);
            prop_assert!(t.la < a && t.lb < b);
            cursor = t.k1;
        }
        prop_assert_eq!(cursor, k);
        prop_assert!(tasks.len() < a + b);
    }

    /// Ordering is always a permutation covering every task exactly
    /// once, for any shift and locality predicate.
    #[test]
    fn ordering_is_permutation(
        k in 1usize..1000,
        a in 1usize..16,
        b in 1usize..16,
        shift in 0usize..32,
        smp_first in any::<bool>(),
        local_mask in 0u32..,
    ) {
        let tasks = build_tasks(k, a, b);
        let order = order_tasks(tasks.len(), &tasks, a, shift, smp_first, |t| {
            (local_mask >> (t.la % 32)) & 1 == 1
        });
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..tasks.len()).collect::<Vec<_>>());
    }

    /// With SMP-first, no remote task ever precedes a local one.
    #[test]
    fn smp_first_is_a_clean_partition(
        k in 1usize..500,
        a in 1usize..12,
        b in 1usize..12,
        shift in 0usize..12,
        local_mask in 0u32..,
    ) {
        let tasks = build_tasks(k, a, b);
        let is_local = |la: usize| (local_mask >> (la % 32)) & 1 == 1;
        let order = order_tasks(tasks.len(), &tasks, a, shift, true, |t| is_local(t.la));
        let mut seen_remote = false;
        for idx in order {
            let l = is_local(tasks[idx].la);
            if !l { seen_remote = true; }
            prop_assert!(!(l && seen_remote), "local task after a remote one");
        }
    }

    /// Every (i, la) / (lb, j) logical block has exactly one owner and
    /// ownership covers all ranks.
    #[test]
    fn ownership_covers_ranks(
        p in 1usize..6,
        q in 1usize..6,
        ta in op_strategy(),
        tb in op_strategy(),
    ) {
        let grid = ProcGrid::new(p, q);
        let spec = GemmSpec::new(ta, tb, 8, 8, 8);
        let mut owners = std::collections::HashSet::new();
        for i in 0..p {
            for la in 0..a_kparts(grid) {
                let o = a_owner(&spec, grid, i, la);
                prop_assert!(o < grid.nranks());
                owners.insert(o);
            }
        }
        prop_assert_eq!(owners.len(), grid.nranks());
        let mut owners = std::collections::HashSet::new();
        for lb in 0..b_kparts(grid) {
            for j in 0..q {
                owners.insert(b_owner(&spec, grid, lb, j));
            }
        }
        prop_assert_eq!(owners.len(), grid.nranks());
    }

    /// Full pipeline correctness on the thread backend for random
    /// shapes, transposes and rank counts.
    #[test]
    fn srumma_matches_serial_on_random_problems(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        ta in op_strategy(),
        tb in op_strategy(),
        nranks in 1usize..9,
        seed in 0u64..500,
    ) {
        let spec = GemmSpec::new(ta, tb, m, n, k);
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let (c, _) = multiply_threads(nranks, &Algorithm::srumma_default(), &spec, &a, &b);
        let expect = serial_reference(&spec, &a, &b);
        let err = max_abs_diff(&c, &expect);
        prop_assert!(err < 1e-9, "err {err} for {spec:?} x{nranks}");
    }
}
