//! Property-style tests on the core algorithm machinery, driven by the
//! in-repo deterministic [`Rng`] (the workspace builds offline, without
//! a property-testing framework).

use srumma_core::driver::{multiply_threads, serial_reference};
use srumma_core::layout::{a_kparts, a_owner, b_kparts, b_owner};
use srumma_core::taskorder::{build_tasks, order_tasks};
use srumma_core::{Algorithm, GemmSpec};
use srumma_dense::{max_abs_diff, Matrix, Op, Rng};
use srumma_model::ProcGrid;

const CASES: u64 = 32;

fn random_op(rng: &mut Rng) -> Op {
    if rng.chance(0.5) {
        Op::N
    } else {
        Op::T
    }
}

/// Tasks tile 0..k exactly and each fits inside one panel of each
/// partition, for arbitrary k and partition counts.
#[test]
fn tasks_tile_k() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x7A5C_0001 + case);
        let k = rng.range(1, 4999);
        let a = rng.range(1, 23);
        let b = rng.range(1, 23);
        let tasks = build_tasks(k, a, b);
        let mut cursor = 0usize;
        for t in &tasks {
            assert_eq!(t.k0, cursor, "case {case} (k={k}, a={a}, b={b})");
            assert!(t.k1 > t.k0, "case {case}");
            assert!(t.la < a && t.lb < b, "case {case}");
            cursor = t.k1;
        }
        assert_eq!(cursor, k, "case {case} (k={k}, a={a}, b={b})");
        assert!(tasks.len() < a + b, "case {case}");
    }
}

/// Ordering is always a permutation covering every task exactly once,
/// for any shift and locality predicate.
#[test]
fn ordering_is_permutation() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x08DE_0002 + case);
        let k = rng.range(1, 999);
        let a = rng.range(1, 15);
        let b = rng.range(1, 15);
        let shift = rng.below(32);
        let smp_first = rng.chance(0.5);
        let local_mask = rng.next_u64() as u32;
        let tasks = build_tasks(k, a, b);
        let order = order_tasks(tasks.len(), &tasks, a, shift, smp_first, |t| {
            (local_mask >> (t.la % 32)) & 1 == 1
        });
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..tasks.len()).collect::<Vec<_>>(),
            "case {case} (k={k}, a={a}, b={b}, shift={shift})"
        );
    }
}

/// With SMP-first, no remote task ever precedes a local one.
#[test]
fn smp_first_is_a_clean_partition() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5111_0003 + case);
        let k = rng.range(1, 499);
        let a = rng.range(1, 11);
        let b = rng.range(1, 11);
        let shift = rng.below(12);
        let local_mask = rng.next_u64() as u32;
        let tasks = build_tasks(k, a, b);
        let is_local = |la: usize| (local_mask >> (la % 32)) & 1 == 1;
        let order = order_tasks(tasks.len(), &tasks, a, shift, true, |t| is_local(t.la));
        let mut seen_remote = false;
        for idx in order {
            let l = is_local(tasks[idx].la);
            if !l {
                seen_remote = true;
            }
            assert!(
                !(l && seen_remote),
                "case {case}: local task after a remote one"
            );
        }
    }
}

/// Every (i, la) / (lb, j) logical block has exactly one owner and
/// ownership covers all ranks.
#[test]
fn ownership_covers_ranks() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x01BE_0004 + case);
        let p = rng.range(1, 5);
        let q = rng.range(1, 5);
        let (ta, tb) = (random_op(&mut rng), random_op(&mut rng));
        let grid = ProcGrid::new(p, q);
        let spec = GemmSpec::new(ta, tb, 8, 8, 8);
        let mut owners = std::collections::HashSet::new();
        for i in 0..p {
            for la in 0..a_kparts(grid) {
                let o = a_owner(&spec, grid, i, la);
                assert!(o < grid.nranks(), "case {case}");
                owners.insert(o);
            }
        }
        assert_eq!(owners.len(), grid.nranks(), "case {case} ({p}x{q})");
        let mut owners = std::collections::HashSet::new();
        for lb in 0..b_kparts(grid) {
            for j in 0..q {
                owners.insert(b_owner(&spec, grid, lb, j));
            }
        }
        assert_eq!(owners.len(), grid.nranks(), "case {case} ({p}x{q})");
    }
}

/// Full pipeline correctness on the thread backend for random shapes,
/// transposes and rank counts.
#[test]
fn srumma_matches_serial_on_random_problems() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xF1FE_0005 + case);
        let m = rng.range(1, 39);
        let n = rng.range(1, 39);
        let k = rng.range(1, 39);
        let (ta, tb) = (random_op(&mut rng), random_op(&mut rng));
        let nranks = rng.range(1, 8);
        let seed = rng.next_u64() % 500;
        let spec = GemmSpec::new(ta, tb, m, n, k);
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed + 1);
        let (c, _) = multiply_threads(nranks, &Algorithm::srumma_default(), &spec, &a, &b);
        let expect = serial_reference(&spec, &a, &b);
        let err = max_abs_diff(&c, &expect);
        assert!(err < 1e-9, "case {case}: err {err} for {spec:?} x{nranks}");
    }
}
