//! Property-style tests for the batched driver: random batches (mixed
//! shapes, transposes, scalars, degenerate extents, per-entry option
//! overrides, random windows) checked against the serial reference on
//! all three backends — host threads, the virtual-time simulator, and
//! the work-stealing executor including oversubscribed pools. Driven by
//! the in-repo deterministic [`Rng`] (the workspace builds offline,
//! without a property-testing framework). Set `SRUMMA_PROP_SEED` to
//! pin one case or `SRUMMA_PROP_CASES` to widen the sweep.

use srumma_core::batch::{batch_serial_reference, BatchEntry, BatchSpec};
use srumma_core::driver::default_grid;
use srumma_core::{GemmSpec, SrummaOptions};
use srumma_dense::{max_abs_diff, prop_rerun, prop_seeds, BlockMask, Matrix, Op, Rng};
use srumma_model::Machine;

fn random_op(rng: &mut Rng) -> Op {
    if rng.chance(0.5) {
        Op::N
    } else {
        Op::T
    }
}

/// Absolute tolerance for a length-`k` dot product of O(1) values.
fn tolerance(k: usize) -> f64 {
    1e-12 * k.max(1) as f64 * 100.0
}

/// A random batch: 1–8 entries, extents 1–24 (k occasionally 0), all
/// four transpose cases, random `α`/`β`, optional initial C, an
/// occasional per-entry options override, and an occasional block-mask
/// pair (shaped for the grid of `nranks`, which is why callers pick
/// the rank count *before* the batch). Mask densities include both
/// degenerate ends — 0 (the entry computes only `β·C`) and 1 (the
/// mask must change nothing).
fn random_batch(rng: &mut Rng, nranks: usize) -> BatchSpec {
    let grid = default_grid(nranks);
    let mut batch = BatchSpec::new().with_window(rng.range(1, 4));
    let entries = rng.range(1, 8);
    for _ in 0..entries {
        let m = rng.range(1, 24);
        let n = rng.range(1, 24);
        let k = if rng.chance(0.1) { 0 } else { rng.range(1, 24) };
        let (ta, tb) = (random_op(rng), random_op(rng));
        let alpha = rng.unit() * 2.0;
        let beta = if rng.chance(0.5) { 0.0 } else { rng.unit() };
        let spec = GemmSpec::new(ta, tb, m, n, k).with_scalars(alpha, beta);
        let seed = rng.next_u64() % 10_000;
        let mut e = BatchEntry::new(
            spec,
            Matrix::random(m, k, seed),
            Matrix::random(k, n, seed + 1),
        );
        if rng.chance(0.5) {
            e = e.with_c0(Matrix::random(m, n, seed + 2));
        }
        if rng.chance(0.3) {
            e = e.with_opts(SrummaOptions {
                smp_first: rng.chance(0.5),
                diagonal_shift: rng.chance(0.5),
                double_buffer: rng.chance(0.8),
                prefetch_depth: rng.range(1, 3),
                ..SrummaOptions::default()
            });
        }
        if rng.chance(0.4) {
            let density = |rng: &mut Rng| match rng.below(5) {
                0 => 0.0,
                1 => 1.0,
                _ => 0.25 + 0.25 * rng.below(3) as f64,
            };
            let ma = BlockMask::random(grid.p, grid.q, density(rng), seed + 3);
            let mb = BlockMask::random(grid.p, grid.q, density(rng), seed + 4);
            // Sometimes mask only one operand.
            match rng.below(4) {
                0 => e = e.with_masks(Some(ma), None),
                1 => e = e.with_masks(None, Some(mb)),
                _ => e = e.with_masks(Some(ma), Some(mb)),
            }
        }
        batch.push(e);
    }
    batch
}

fn max_k(batch: &BatchSpec) -> usize {
    batch.entries.iter().map(|e| e.spec.k).max().unwrap_or(0)
}

fn check(outputs: &[Matrix], batch: &BatchSpec, seed: u64, what: &str, test: &str) {
    let expect = batch_serial_reference(batch);
    let tol = tolerance(max_k(batch));
    for (e, (got, want)) in outputs.iter().zip(&expect).enumerate() {
        let diff = max_abs_diff(got, want);
        assert!(
            diff < tol,
            "seed {seed:#x} ({what}): entry {e} ({:?}): |diff|={diff:e} tol={tol:e}\n{}",
            batch.entries[e].spec,
            prop_rerun(seed, test),
        );
    }
}

#[test]
fn random_batches_on_threads_match_serial() {
    for seed in prop_seeds(0xBA7C_0001, 16) {
        let mut rng = Rng::new(seed);
        let nranks = rng.range(1, 8);
        let batch = random_batch(&mut rng, nranks);
        let res = srumma_core::batch::multiply_batch(&batch, nranks);
        check(
            &res.outputs,
            &batch,
            seed,
            &format!("threads x{nranks}"),
            "random_batches_on_threads_match_serial",
        );
        for &g in &res.ws_grow_counts {
            assert!(g <= 1, "seed {seed:#x}: workspace grew {g} times");
        }
    }
}

/// Heavily sparse batch on a heavily oversubscribed executor: 128
/// logical ranks on 2 workers, every entry masked at low density, so
/// most ranks have *no* surviving tasks in most entries and cross an
/// entire batch of epoch fences doing nothing but β-scaling C. A rank
/// that skips a fence because it had no work deadlocks the ring here.
#[test]
fn sparse_batch_on_128_ranks_2_workers() {
    let (nranks, workers) = (128, 2);
    let grid = default_grid(nranks);
    let mut batch = BatchSpec::new();
    for e in 0..6u64 {
        let n = 40 + 4 * e as usize;
        let spec = GemmSpec::new(
            if e % 2 == 0 { Op::N } else { Op::T },
            if e % 3 == 0 { Op::T } else { Op::N },
            n,
            n,
            n,
        )
        .with_scalars(1.0, 0.5);
        let entry = BatchEntry::new(
            spec,
            Matrix::random(n, n, 0xE0 + e),
            Matrix::random(n, n, 0xE1 + e),
        )
        .with_c0(Matrix::random(n, n, 0xE2 + e))
        .with_masks(
            Some(BlockMask::random(grid.p, grid.q, 0.15, 0xE3 + e)),
            Some(BlockMask::random(grid.p, grid.q, 0.15, 0xE4 + e)),
        );
        batch.push(entry);
    }
    let res = srumma_core::batch::multiply_batch_exec(&batch, nranks, workers);
    check(
        &res.outputs,
        &batch,
        0,
        "sparse exec x128 on 2 workers",
        "sparse_batch_on_128_ranks_2_workers",
    );
    assert!(
        res.stats.tasks_masked_total() > 0,
        "low-density masks pruned nothing"
    );
    for &g in &res.ws_grow_counts {
        assert!(g <= 1, "workspace grew {g} times");
    }
}

#[test]
fn random_batches_on_sim_match_serial() {
    let machines = [Machine::linux_myrinet(), Machine::sgi_altix()];
    for seed in prop_seeds(0xBA7C_0002, 8) {
        let mut rng = Rng::new(seed);
        let nranks = rng.range(1, 6);
        let batch = random_batch(&mut rng, nranks);
        let machine = rng.pick(&machines);
        let res = srumma_core::batch::multiply_batch_sim(&batch, machine, nranks);
        check(
            &res.outputs,
            &batch,
            seed,
            &format!("sim x{nranks}"),
            "random_batches_on_sim_match_serial",
        );
    }
}

/// The executor path under deliberate oversubscription: more logical
/// ranks than workers, so fence waits park rank tasks and the slot-ring
/// reuse discipline is genuinely exercised across interleavings.
#[test]
fn random_batches_on_oversubscribed_executor_match_serial() {
    for seed in prop_seeds(0xBA7C_0003, 16) {
        let mut rng = Rng::new(seed);
        let nranks = rng.range(2, 12);
        let batch = random_batch(&mut rng, nranks);
        let workers = rng.range(1, (nranks / 2).max(1));
        let res = srumma_core::batch::multiply_batch_exec(&batch, nranks, workers);
        check(
            &res.outputs,
            &batch,
            seed,
            &format!("exec x{nranks} on {workers} workers"),
            "random_batches_on_oversubscribed_executor_match_serial",
        );
        for &g in &res.ws_grow_counts {
            assert!(g <= 1, "seed {seed:#x}: workspace grew {g} times");
        }
    }
}
