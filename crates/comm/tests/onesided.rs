//! Integration tests for the one-sided operations (put, accumulate,
//! fence) on both backends — the rest of the ARMCI surface the paper's
//! library exposes (SRUMMA itself only needs get, but `ga_dgemm`'s
//! siblings in Global Arrays use all of them).

use srumma_comm::{sim_run, thread_run, Comm, DistMatrix, SimOptions};
use srumma_dense::Matrix;
use srumma_model::{Machine, ProcGrid};

#[test]
fn put_moves_data_between_ranks_under_simulation() {
    let grid = ProcGrid::new(2, 2);
    let mat = DistMatrix::create(grid, 8, 8);
    let res = sim_run(&SimOptions::new(Machine::linux_myrinet(), 4), |c| {
        // Rank 0 puts a recognizable pattern into rank 3's block.
        if c.rank() == 0 {
            let (r, k) = mat.block_dims(3);
            let payload: Vec<f64> = (0..r * k).map(|i| i as f64).collect();
            c.put(&mat, 3, &payload);
        }
        c.barrier();
        // Everyone reads rank 3's block back.
        let mut buf = Vec::new();
        c.get(&mat, 3, &mut buf);
        buf[5]
    });
    for v in res.outputs {
        assert_eq!(v, 5.0);
    }
}

#[test]
fn nbput_with_fence_completes_in_time_order() {
    // Target on a *different* node, so the put rides the zero-copy RMA
    // path (an intra-node put is a synchronous memcpy by design).
    let grid = ProcGrid::new(2, 2);
    let mat = DistMatrix::create_virtual(grid, 512, 512);
    let res = sim_run(&SimOptions::new(Machine::linux_myrinet(), 4), |c| {
        if c.rank() == 0 {
            let t0 = c.now();
            let _h = c.nbput(&mat, 2, &[]);
            let issued = c.now() - t0; // nonblocking: returns fast
            c.fence(); // must cover the outstanding put
            let fenced = c.now() - t0;
            (issued, fenced)
        } else {
            (0.0, 0.0)
        }
    });
    let (issued, fenced) = res.outputs[0];
    assert!(issued < 1e-4, "nbput blocked for {issued}s");
    // The put moves a 256x256 block over Myrinet: fence must wait it.
    assert!(fenced > 1e-3, "fence returned too early: {fenced}");
}

#[test]
fn accumulate_sums_contributions_from_all_ranks() {
    // A Global-Arrays-style assembly: every rank accumulates its
    // contribution into rank 0's block. ARMCI accumulates are atomic
    // per call; here ranks run at distinct virtual times and the
    // thread backend serializes via the write guard.
    let grid = ProcGrid::new(1, 2);
    let mat = DistMatrix::create(grid, 2, 4);
    let (r, k) = mat.block_dims(0);
    let res = thread_run(2, |c| {
        let contribution: Vec<f64> = vec![(c.rank() + 1) as f64; r * k];
        // Serialize accumulates with a crude barrier-ordered protocol.
        if c.rank() == 0 {
            c.acc(&mat, 0, 1.0, &contribution);
        }
        c.barrier();
        if c.rank() == 1 {
            c.acc(&mat, 0, 2.0, &contribution);
        }
        c.barrier();
        let mut buf = Vec::new();
        c.get(&mat, 0, &mut buf);
        buf[0]
    });
    // 1*1 + 2*2 = 5 in every element.
    for v in res.outputs {
        assert_eq!(v, 5.0);
    }
}

#[test]
fn acc_steals_target_cpu_under_simulation() {
    let grid = ProcGrid::new(1, 2);
    let mat = DistMatrix::create_virtual(grid, 4000, 4000);
    let res = sim_run(&SimOptions::new(Machine::linux_myrinet(), 2), |c| {
        if c.rank() == 0 {
            c.acc(&mat, 1, 1.0, &[]);
        }
        c.barrier();
        c.now()
    });
    // The accumulate handler ran on rank 1's CPU: stolen time recorded.
    assert!(
        res.stats.ranks[1].stolen_cpu_time > 0.0,
        "accumulate must charge the target CPU"
    );
}

#[test]
fn fence_with_nothing_outstanding_is_free() {
    let res = sim_run(&SimOptions::new(Machine::sgi_altix(), 2), |c| {
        let t0 = c.now();
        c.fence();
        c.now() - t0
    });
    for v in res.outputs {
        assert_eq!(v, 0.0);
    }
}

#[test]
fn put_then_get_roundtrip_on_threads() {
    let grid = ProcGrid::new(2, 1);
    let mat = DistMatrix::create(grid, 6, 3);
    let expect = Matrix::random(3, 3, 7);
    let res = thread_run(2, |c| {
        if c.rank() == 1 {
            c.put(&mat, 0, expect.as_slice());
        }
        c.barrier();
        let mut buf = Vec::new();
        c.get(&mat, 0, &mut buf);
        buf
    });
    for out in res.outputs {
        assert_eq!(out, expect.as_slice());
    }
}
