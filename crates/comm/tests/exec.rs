//! Executor backend integration tests: correctness of the scheduler
//! (gated threads and FSM tasks), oversubscribed collectives, message
//! passing, scheduling statistics, and poison propagation.

use srumma_comm::exec::{exec_run, exec_run_tasks, exec_run_traced, ExecComm, RankTask, Step};
use srumma_comm::{Comm, DistMatrix};
use srumma_dense::Matrix;
use srumma_model::ProcGrid;
use srumma_trace::TraceKind;

#[test]
fn gated_ranks_run_and_return_outputs() {
    let res = exec_run(8, 2, |c| c.rank() * 10);
    assert_eq!(res.outputs, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    let exec = res
        .stats
        .exec
        .expect("executor runs always carry ExecStats");
    assert_eq!(exec.workers, 2);
    assert!(
        exec.schedules() >= 8,
        "every rank was scheduled at least once"
    );
}

#[test]
fn oversubscribed_barriers_complete() {
    // 64 ranks on 2 workers, several barrier rounds: every round must
    // observe all increments from the previous one.
    use std::sync::atomic::{AtomicUsize, Ordering};
    let counter = AtomicUsize::new(0);
    exec_run(64, 2, |c| {
        for round in 1..=3 {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            assert!(counter.load(Ordering::SeqCst) >= round * 64);
            c.barrier();
        }
    });
    assert_eq!(counter.load(Ordering::SeqCst), 3 * 64);
}

#[test]
fn ring_sendrecv_on_fewer_workers_than_ranks() {
    // Cannon-style shift: every rank blocks in recv at some point, so
    // the loan gating must keep handing the worker slots around.
    let res = exec_run(16, 3, |c| {
        let n = c.nranks();
        let right = (c.rank() + 1) % n;
        let left = (c.rank() + n - 1) % n;
        let mut buf = Vec::new();
        c.sendrecv(right, 1, &[c.rank() as f64], 8, left, &mut buf, 8);
        buf[0] as usize
    });
    let expect: Vec<usize> = (0..16).map(|r| (r + 15) % 16).collect();
    assert_eq!(res.outputs, expect);
}

#[test]
fn get_copies_real_blocks() {
    let grid = ProcGrid::new(2, 2);
    let mat = DistMatrix::create(grid, 8, 8);
    mat.scatter(&Matrix::random(8, 8, 7));
    let res = exec_run(4, 2, |c| {
        let mut buf = Vec::new();
        let peer = (c.rank() + 1) % 4;
        c.get(&mat, peer, &mut buf);
        buf.iter().sum::<f64>()
    });
    for (r, got) in res.outputs.iter().enumerate() {
        let peer = (r + 1) % 4;
        let expect: f64 = mat.read_block(peer).mat().unwrap().data()[..16]
            .iter()
            .sum();
        assert!((got - expect).abs() < 1e-12);
    }
}

#[test]
fn traced_run_records_sched_markers_and_occupancy() {
    let res = exec_run_traced(32, 2, |c| {
        c.barrier();
        c.rank()
    });
    let exec = res.stats.exec.unwrap();
    assert!(
        exec.parks > 0,
        "31 ranks wait in the barrier: parks must show"
    );
    assert!(exec.occupancy() >= 0.0 && exec.occupancy() <= 1.0);
    assert!(exec.steal_rate() >= 0.0 && exec.steal_rate() <= 1.0);
    assert!(
        res.trace.iter().any(|e| e.kind == TraceKind::Sched),
        "traced executor runs carry Sched events"
    );
    // Sched markers are instantaneous.
    for e in res.trace.iter().filter(|e| e.kind == TraceKind::Sched) {
        assert_eq!(e.t0, e.t1);
    }
    // Summary surfaces the executor metrics.
    let summary = res.stats.summary_json();
    assert!(summary.contains("\"exec_workers\": 2"));
    assert!(summary.contains("exec_steal_rate"));
    assert!(summary.contains("exec_occupancy"));
}

/// A deliberately chatty FSM task: counts to `limit` yielding every
/// step, then waits on the global barrier via `barrier_try`.
struct CountTask {
    comm: ExecComm,
    count: usize,
    limit: usize,
}

impl RankTask for CountTask {
    type Out = usize;
    fn step(&mut self) -> Step<usize> {
        if self.count < self.limit {
            self.count += 1;
            return Step::Yield;
        }
        if self.comm.barrier_try() {
            Step::Done(self.count)
        } else {
            Step::Park
        }
    }
}

#[test]
fn fsm_tasks_yield_park_and_finish() {
    for workers in [1, 2, 4] {
        let res = exec_run_tasks(24, workers, false, |comm| {
            let limit = 3 + comm.rank() % 5;
            Box::new(CountTask {
                comm,
                count: 0,
                limit,
            })
        });
        let expect: Vec<usize> = (0..24).map(|r| 3 + r % 5).collect();
        assert_eq!(res.outputs, expect, "workers={workers}");
        let exec = res.stats.exec.unwrap();
        assert!(
            exec.local_pops > 0,
            "yielding tasks are resumed from the local deque"
        );
    }
}

#[test]
fn fsm_blocking_barrier_is_rejected() {
    let caught = std::panic::catch_unwind(|| {
        exec_run_tasks(2, 1, false, |comm| {
            Box::new(BadBarrierTask { comm }) as Box<dyn RankTask<Out = ()> + Send>
        })
    });
    let payload = caught.expect_err("blocking barrier in an FSM task must panic");
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap();
    assert!(msg.contains("barrier_try"), "got: {msg}");
}

struct BadBarrierTask {
    comm: ExecComm,
}

impl RankTask for BadBarrierTask {
    type Out = ();
    fn step(&mut self) -> Step<()> {
        self.comm.barrier(); // wrong: blocking call on an FSM rank
        Step::Done(())
    }
}

// ---- poison propagation ---------------------------------------------

#[test]
fn panicking_gated_rank_unwinds_parked_peers() {
    // Everyone except rank 3 parks in the barrier; rank 3 panics. The
    // run must unwind promptly with the original payload, not hang.
    let caught = std::panic::catch_unwind(|| {
        exec_run(16, 2, |c| {
            if c.rank() == 3 {
                panic!("injected rank failure");
            }
            c.barrier();
        })
    });
    let msg = *caught
        .expect_err("poisoned run must propagate the panic")
        .downcast::<&str>()
        .unwrap();
    assert_eq!(msg, "injected rank failure");
}

#[test]
fn panicking_recv_waiter_unwinds_too() {
    // Rank 0 waits for a message that never comes; rank 1 panics.
    let caught = std::panic::catch_unwind(|| {
        exec_run(2, 1, |c| {
            if c.rank() == 0 {
                let mut buf = Vec::new();
                c.recv(1, 9, &mut buf, 8);
            } else {
                panic!("sender died");
            }
        })
    });
    let msg = *caught.expect_err("must unwind").downcast::<&str>().unwrap();
    assert_eq!(msg, "sender died");
}

struct PanicAtTask {
    comm: ExecComm,
    steps: usize,
    bomb: bool,
}

impl RankTask for PanicAtTask {
    type Out = ();
    fn step(&mut self) -> Step<()> {
        if self.bomb && self.steps == 2 {
            panic!("fsm task exploded");
        }
        self.steps += 1;
        if self.steps < 4 {
            return Step::Yield;
        }
        if self.comm.barrier_try() {
            Step::Done(())
        } else {
            Step::Park
        }
    }
}

#[test]
fn panicking_fsm_task_poisons_the_run() {
    let caught = std::panic::catch_unwind(|| {
        exec_run_tasks(8, 2, false, |comm| {
            let bomb = comm.rank() == 5;
            Box::new(PanicAtTask {
                comm,
                steps: 0,
                bomb,
            })
        })
    });
    let msg = *caught.expect_err("must unwind").downcast::<&str>().unwrap();
    assert_eq!(msg, "fsm task exploded");
}
