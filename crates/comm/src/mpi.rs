//! Two-sided collectives over `Comm::send`/`Comm::recv`.
//!
//! The message-passing baselines need what ScaLAPACK's BLACS provides:
//! broadcasts along process-grid rows and columns (SUMMA) and ring
//! shifts (Cannon). These are built portably on the trait's send/recv
//! with the classic binomial-tree broadcast, so their cost under the
//! simulator reflects real collective behaviour (log-depth latency,
//! link contention, rendezvous stalls for big panels).

use crate::comm::Comm;

/// Binomial-tree broadcast of `data` from `group[root_idx]` to every
/// rank in `group`. Every member must call this with identical `group`
/// and `root_idx`. On non-root ranks `data` is overwritten (cleared and
/// filled; stays empty in modeled runs). `bytes` is the logical payload
/// size.
pub fn bcast<C: Comm>(
    comm: &mut C,
    group: &[usize],
    root_idx: usize,
    data: &mut Vec<f64>,
    bytes: u64,
    tag: u64,
) {
    let n = group.len();
    if n <= 1 {
        return;
    }
    let me_idx = group
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller not in the broadcast group");
    // Re-index so the root is virtual rank 0.
    let vrank = (me_idx + n - root_idx) % n;

    // Receive phase: find the highest bit of vrank — the parent sent in
    // that round.
    if vrank != 0 {
        let round = usize::BITS - 1 - vrank.leading_zeros();
        let parent_v = vrank - (1 << round);
        let parent = group[(parent_v + root_idx) % n];
        comm.recv(parent, tag, data, bytes);
    }
    // Send phase: forward to children in increasing round order.
    let start_round = if vrank == 0 {
        0
    } else {
        (usize::BITS - vrank.leading_zeros()) as usize
    };
    let mut round = start_round;
    while (1usize << round) < n {
        let child_v = vrank + (1 << round);
        if child_v < n {
            let child = group[(child_v + root_idx) % n];
            comm.send(child, tag, data, bytes);
        }
        round += 1;
    }
}

/// Ring broadcast of `data` from `group[root_idx]`: the root sends to
/// its ring successor, every member forwards to the next until the ring
/// closes. One bcast has `n − 1` *sequential* hops (worse latency than
/// the binomial tree's `⌈log₂ n⌉`), but every link is used exactly once
/// and consecutive broadcasts with rotating roots pipeline around the
/// ring — the communication schedule DIMMA [Choi '97] exploits, exposed
/// here as the `Ring` SUMMA variant.
pub fn bcast_ring<C: Comm>(
    comm: &mut C,
    group: &[usize],
    root_idx: usize,
    data: &mut Vec<f64>,
    bytes: u64,
    tag: u64,
) {
    let n = group.len();
    if n <= 1 {
        return;
    }
    let me_idx = group
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller not in the broadcast group");
    let vrank = (me_idx + n - root_idx) % n; // 0 = root
    let next = group[(me_idx + 1) % n];
    let prev = group[(me_idx + n - 1) % n];
    if vrank == 0 {
        comm.send(next, tag, data, bytes);
    } else {
        comm.recv(prev, tag, data, bytes);
        if vrank != n - 1 {
            comm.send(next, tag, data, bytes);
        }
    }
}

/// Ring shift within `group`: send `buf` to the member `shift`
/// positions ahead, receive from the member `shift` behind, replacing
/// `buf` (Cannon's skew/shift step). Deadlock-free.
pub fn ring_shift<C: Comm>(
    comm: &mut C,
    group: &[usize],
    shift: usize,
    buf: &mut Vec<f64>,
    bytes: u64,
    tag: u64,
) {
    let n = group.len();
    if n <= 1 || shift.is_multiple_of(n) {
        return;
    }
    let me_idx = group
        .iter()
        .position(|&r| r == comm.rank())
        .expect("caller not in the shift group");
    let dst = group[(me_idx + shift) % n];
    let src = group[(me_idx + n - shift % n) % n];
    let send_data = std::mem::take(buf);
    comm.sendrecv(dst, tag, &send_data, bytes, src, buf, bytes);
}

/// All ranks contribute `value`; everyone receives the maximum. A tiny
/// allreduce used by harnesses to agree on timings. Gather-to-0 then
/// broadcast.
pub fn allreduce_max<C: Comm>(comm: &mut C, value: f64, tag: u64) -> f64 {
    let n = comm.nranks();
    if n == 1 {
        return value;
    }
    let me = comm.rank();
    let mut best = value;
    if me == 0 {
        let mut buf = Vec::new();
        for src in 1..n {
            comm.recv(src, tag, &mut buf, 8);
            if let Some(&v) = buf.first() {
                best = best.max(v);
            }
        }
    } else {
        comm.send(0, tag, &[value], 8);
    }
    let group: Vec<usize> = (0..n).collect();
    let mut out = vec![best];
    bcast(comm, &group, 0, &mut out, 8, tag + 1);
    out.first().copied().unwrap_or(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threadbackend::thread_run;

    #[test]
    fn bcast_delivers_to_all_from_any_root() {
        for root in 0..5 {
            let res = thread_run(5, |c| {
                let group: Vec<usize> = (0..5).collect();
                let mut data = if c.rank() == root {
                    vec![42.0, 7.0]
                } else {
                    Vec::new()
                };
                bcast(c, &group, root, &mut data, 16, 9);
                data
            });
            for out in &res.outputs {
                assert_eq!(out, &vec![42.0, 7.0], "root {root}");
            }
        }
    }

    #[test]
    fn bcast_within_subgroup_leaves_others_alone() {
        let res = thread_run(6, |c| {
            // Broadcast only among even ranks.
            let group = vec![0, 2, 4];
            if group.contains(&c.rank()) {
                let mut data = if c.rank() == 2 { vec![5.0] } else { Vec::new() };
                bcast(c, &group, 1, &mut data, 8, 3);
                data
            } else {
                vec![-1.0]
            }
        });
        assert_eq!(res.outputs[0], vec![5.0]);
        assert_eq!(res.outputs[2], vec![5.0]);
        assert_eq!(res.outputs[4], vec![5.0]);
        assert_eq!(res.outputs[1], vec![-1.0]);
    }

    #[test]
    fn ring_shift_rotates_payloads() {
        let res = thread_run(4, |c| {
            let group: Vec<usize> = (0..4).collect();
            let mut buf = vec![c.rank() as f64];
            ring_shift(c, &group, 1, &mut buf, 8, 2);
            buf[0] as usize
        });
        assert_eq!(res.outputs, vec![3, 0, 1, 2]);
    }

    #[test]
    fn ring_shift_by_multiple_positions() {
        let res = thread_run(6, |c| {
            let group: Vec<usize> = (0..6).collect();
            let mut buf = vec![c.rank() as f64];
            ring_shift(c, &group, 2, &mut buf, 8, 2);
            buf[0] as usize
        });
        assert_eq!(res.outputs, vec![4, 5, 0, 1, 2, 3]);
    }

    #[test]
    fn zero_shift_is_identity() {
        let res = thread_run(3, |c| {
            let group: Vec<usize> = (0..3).collect();
            let mut buf = vec![c.rank() as f64];
            ring_shift(c, &group, 0, &mut buf, 8, 2);
            buf[0] as usize
        });
        assert_eq!(res.outputs, vec![0, 1, 2]);
    }

    #[test]
    fn allreduce_max_agrees_everywhere() {
        let res = thread_run(7, |c| {
            let mine = ((c.rank() * 31 + 3) % 11) as f64;
            allreduce_max(c, mine, 100)
        });
        let expect = (0..7)
            .map(|r| ((r * 31 + 3) % 11) as f64)
            .fold(0.0, f64::max);
        for v in res.outputs {
            assert_eq!(v, expect);
        }
    }
}

#[cfg(test)]
mod ring_tests {
    use super::*;
    use crate::threadbackend::thread_run;

    #[test]
    fn ring_bcast_delivers_from_any_root() {
        for root in 0..5 {
            let res = thread_run(5, |c| {
                let group: Vec<usize> = (0..5).collect();
                let mut data = if c.rank() == root {
                    vec![root as f64, 42.0]
                } else {
                    Vec::new()
                };
                bcast_ring(c, &group, root, &mut data, 16, 77);
                data
            });
            for out in &res.outputs {
                assert_eq!(out, &vec![root as f64, 42.0], "root {root}");
            }
        }
    }

    #[test]
    fn ring_bcast_two_members() {
        let res = thread_run(2, |c| {
            let group = vec![0, 1];
            let mut data = if c.rank() == 1 { vec![9.0] } else { Vec::new() };
            bcast_ring(c, &group, 1, &mut data, 8, 3);
            data[0]
        });
        assert_eq!(res.outputs, vec![9.0, 9.0]);
    }

    #[test]
    fn ring_bcast_singleton_is_noop() {
        let res = thread_run(1, |c| {
            let mut data = vec![1.0];
            bcast_ring(c, &[0], 0, &mut data, 8, 1);
            data[0]
        });
        assert_eq!(res.outputs, vec![1.0]);
    }
}
