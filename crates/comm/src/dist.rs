//! 2-D block-distributed matrices.
//!
//! SRUMMA assumes "the regular block distribution of the matrices A, B,
//! and C" over a `p × q` process grid: process `(i, j)` owns the
//! `(i, j)` block of every matrix, stored densely in that process's
//! segment of the shared arena (so whole blocks are contiguous and a
//! one-sided get of a block is a single transfer).
//!
//! A `DistMatrix` can be **real-backed** (a shared arena holds actual
//! elements — used by tests and host-parallel runs) or **virtual**
//! (shape only — used by modeled paper-scale experiments where a
//! 16000×16000 matrix would otherwise cost 2 GiB per operand).

use crate::arena::SharedArena;
use srumma_dense::{BlockMask, MatMut, MatRef, Matrix};
use srumma_model::{ProcGrid, Topology};
use std::sync::Arc;

// The near-even 1-D partition is canonical in `srumma_dense::mask` (the
// masked serial reference must chunk exactly like the distribution);
// re-exported here so distributed code keeps its historical import path.
pub use srumma_dense::mask::{chunk_len, chunk_start};

enum Backing {
    /// Shape only; no elements exist.
    Virtual,
    /// Real elements in a shared arena: rank `r`'s block lives in
    /// region `base + stride · r`. A privately allocated matrix uses
    /// `base = 0, stride = 1`; the batched driver instead threads many
    /// matrices through **one** arena (regions sized to the batch
    /// high-water mark), so a region may be *longer* than the block it
    /// currently holds — every accessor slices to the block's
    /// `rows · cols` prefix.
    Real {
        arena: Arc<SharedArena>,
        base: usize,
        stride: usize,
    },
}

/// How grid blocks map to rank ids.
///
/// `RowMajor` is the normal placement (block `(i, j)` → rank
/// `i·q + j`). `ColMajor` (block `(i, j)` → rank `j·p + i`) is used for
/// *transposed-storage* operands so that the rank owning the stored
/// block `Aᵀ(l, i)` is the same rank that owns the logical block
/// `op(A)(i, l)` — keeping SUMMA's row/column broadcast structure valid
/// for the `T` cases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RankOrder {
    /// Block `(i, j)` owned by rank `i·q + j`.
    #[default]
    RowMajor,
    /// Block `(i, j)` owned by rank `j·p + i`.
    ColMajor,
}

/// How a matrix's data-slot indices map to **cost ranks** — the global
/// rank ids backends use to classify a one-sided operation's cost
/// (shared-memory copy vs network RMA) and traffic level (intra-group
/// vs inter-node).
///
/// Ordinary matrices use [`CostMap::Identity`]: slot `r` *is* rank `r`.
/// The hierarchical and replicated schedules introduce matrices whose
/// slots are not globally addressed: a replica layer's matrices index
/// slots by layer-local rank ([`CostMap::Base`] re-bases them onto the
/// layer's global rank block), and a node group's staging matrices keep
/// the original owner's slot while the data physically lives with the
/// group's elected fetcher ([`CostMap::Staged`] maps each slot to that
/// fetcher, so a groupmate's get prices as an intra-node copy).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CostMap {
    /// Slot `r` is global rank `r` (the flat default).
    #[default]
    Identity,
    /// Slot `r` is global rank `base + r` (replica layers).
    Base(usize),
    /// Slot `r`'s data lives with the fetcher `node`'s member
    /// `lo + r % width` elected for it (group staging regions). The
    /// same modulo formula is the election rule in the hierarchical
    /// planner — the two must agree or costs lie.
    Staged { topo: Topology, node: usize },
}

impl CostMap {
    /// The global rank whose memory serves `slot`'s block.
    #[inline]
    pub fn cost_rank(&self, slot: usize) -> usize {
        match self {
            CostMap::Identity => slot,
            CostMap::Base(base) => base + slot,
            CostMap::Staged { topo, node } => {
                let members = topo.ranks_on_node(*node);
                members.start + slot % members.len()
            }
        }
    }
}

/// A dense matrix distributed in 2-D blocks over a process grid.
pub struct DistMatrix {
    grid: ProcGrid,
    rows: usize,
    cols: usize,
    order: RankOrder,
    backing: Backing,
    /// Optional block-sparsity structure, indexed by **stored** grid
    /// block coordinates (`p × q` of this matrix's grid, after any
    /// transposition applied by the layout layer). `None` means dense.
    mask: Option<BlockMask>,
    /// Slot → cost-rank mapping (see [`CostMap`]).
    cost: CostMap,
}

impl DistMatrix {
    /// Create a **real-backed** distributed matrix (collective
    /// allocation — call once, before launching rank code, like
    /// `ARMCI_Malloc`).
    pub fn create(grid: ProcGrid, rows: usize, cols: usize) -> Self {
        Self::create_with_order(grid, rows, cols, RankOrder::RowMajor, true)
    }

    /// Create a **virtual** distributed matrix (shape only) for modeled
    /// experiments.
    pub fn create_virtual(grid: ProcGrid, rows: usize, cols: usize) -> Self {
        Self::create_with_order(grid, rows, cols, RankOrder::RowMajor, false)
    }

    /// Full-control constructor: rank placement order and backing.
    pub fn create_with_order(
        grid: ProcGrid,
        rows: usize,
        cols: usize,
        order: RankOrder,
        real: bool,
    ) -> Self {
        let backing = if real {
            let lens: Vec<usize> = (0..grid.nranks())
                .map(|r| {
                    let (br, bc) = Self::dims_for(grid, rows, cols, order, r);
                    br * bc
                })
                .collect();
            let (arena, _offsets) = SharedArena::new(&lens);
            Backing::Real {
                arena,
                base: 0,
                stride: 1,
            }
        } else {
            Backing::Virtual
        };
        DistMatrix {
            grid,
            rows,
            cols,
            order,
            backing,
            mask: None,
            cost: CostMap::Identity,
        }
    }

    /// Create a distributed matrix **inside an existing shared arena**:
    /// rank `r`'s block occupies the prefix of region `base + stride·r`.
    /// This is how the batched driver backs a whole stream of matrices
    /// with one collective allocation — regions are sized to the batch
    /// high-water mark and reused slot-by-slot, so each region must be
    /// at least as long as the block mapped into it.
    pub fn create_in_arena(
        grid: ProcGrid,
        rows: usize,
        cols: usize,
        order: RankOrder,
        arena: Arc<SharedArena>,
        base: usize,
        stride: usize,
    ) -> Self {
        for r in 0..grid.nranks() {
            let (br, bc) = Self::dims_for(grid, rows, cols, order, r);
            let (_, len) = arena.region(base + stride * r);
            assert!(
                len >= br * bc,
                "arena region {} holds {len} elems, block of rank {r} needs {}",
                base + stride * r,
                br * bc
            );
        }
        DistMatrix {
            grid,
            rows,
            cols,
            order,
            backing: Backing::Real {
                arena,
                base,
                stride,
            },
            mask: None,
            cost: CostMap::Identity,
        }
    }

    /// Attach a non-identity slot → cost-rank mapping (hierarchical
    /// staging regions, replica-layer matrices). Set before launching
    /// rank code, like the mask.
    pub fn set_cost_map(&mut self, cost: CostMap) {
        self.cost = cost;
    }

    /// The global rank whose memory serves `slot`'s block — what
    /// backends must use for topology/cost classification of one-sided
    /// operations on this matrix (`slot` itself stays the data index).
    #[inline]
    pub fn cost_rank(&self, slot: usize) -> usize {
        self.cost.cost_rank(slot)
    }

    /// Arena region id of `rank`'s block (real backing only).
    fn region_of(&self, rank: usize) -> usize {
        match &self.backing {
            Backing::Real { base, stride, .. } => base + stride * rank,
            Backing::Virtual => unreachable!("virtual matrices have no regions"),
        }
    }

    /// Attach a block-sparsity mask. The mask is indexed by **stored**
    /// block coordinates, so it must be shaped exactly like this
    /// matrix's grid (`p × q` blocks); the layout layer is responsible
    /// for transposing a logical mask before attaching it to
    /// transposed-storage operands.
    ///
    /// # Panics
    /// Panics if the mask shape does not match the grid.
    pub fn set_mask(&mut self, mask: BlockMask) {
        assert_eq!(
            (mask.rows(), mask.cols()),
            (self.grid.p, self.grid.q),
            "mask shape must match the {}x{} process grid",
            self.grid.p,
            self.grid.q
        );
        self.mask = Some(mask);
    }

    /// The attached block-sparsity mask, if any (`None` ≡ dense).
    pub fn mask(&self) -> Option<&BlockMask> {
        self.mask.as_ref()
    }

    /// Whether `rank`'s block may hold nonzeros. Unmasked matrices are
    /// dense: every block is nonzero.
    pub fn block_nonzero(&self, rank: usize) -> bool {
        match &self.mask {
            None => true,
            Some(m) => {
                let (bi, bj) = self.block_coords(rank);
                m.get(bi, bj)
            }
        }
    }

    /// Grid coordinates of the block owned by `rank`.
    pub fn block_coords(&self, rank: usize) -> (usize, usize) {
        match self.order {
            RankOrder::RowMajor => self.grid.coords(rank),
            RankOrder::ColMajor => (rank % self.grid.p, rank / self.grid.p),
        }
    }

    /// Whether real elements back this matrix.
    pub fn is_real(&self) -> bool {
        matches!(self.backing, Backing::Real { .. })
    }

    pub fn grid(&self) -> ProcGrid {
        self.grid
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    fn dims_for(
        grid: ProcGrid,
        rows: usize,
        cols: usize,
        order: RankOrder,
        rank: usize,
    ) -> (usize, usize) {
        let (pi, pj) = match order {
            RankOrder::RowMajor => grid.coords(rank),
            RankOrder::ColMajor => (rank % grid.p, rank / grid.p),
        };
        (chunk_len(rows, grid.p, pi), chunk_len(cols, grid.q, pj))
    }

    /// `(rows, cols)` of the block owned by `rank`.
    pub fn block_dims(&self, rank: usize) -> (usize, usize) {
        Self::dims_for(self.grid, self.rows, self.cols, self.order, rank)
    }

    /// Global `(row, col)` of the top-left element of `rank`'s block.
    pub fn block_origin(&self, rank: usize) -> (usize, usize) {
        let (pi, pj) = self.block_coords(rank);
        (
            chunk_start(self.rows, self.grid.p, pi),
            chunk_start(self.cols, self.grid.q, pj),
        )
    }

    /// Rank owning grid block `(bi, bj)`.
    pub fn owner(&self, bi: usize, bj: usize) -> usize {
        debug_assert!(bi < self.grid.p && bj < self.grid.q);
        match self.order {
            RankOrder::RowMajor => self.grid.rank_at(bi, bj),
            RankOrder::ColMajor => bj * self.grid.p + bi,
        }
    }

    /// Size in bytes of `rank`'s block.
    pub fn block_bytes(&self, rank: usize) -> u64 {
        let (r, c) = self.block_dims(rank);
        (r * c * std::mem::size_of::<f64>()) as u64
    }

    /// Read access to `rank`'s block (None data if virtual).
    pub fn read_block(&self, rank: usize) -> BlockRead<'_> {
        let (rows, cols) = self.block_dims(rank);
        let guard = match &self.backing {
            Backing::Virtual => None,
            Backing::Real { arena, .. } => Some(arena.read_guard(self.region_of(rank))),
        };
        BlockRead { rows, cols, guard }
    }

    /// Write access to `rank`'s block (no-op handle if virtual).
    pub fn write_block(&self, rank: usize) -> BlockWrite<'_> {
        let (rows, cols) = self.block_dims(rank);
        let guard = match &self.backing {
            Backing::Virtual => None,
            Backing::Real { arena, .. } => Some(arena.write_guard(self.region_of(rank))),
        };
        BlockWrite { rows, cols, guard }
    }

    /// Copy `rank`'s block into `dst` (resized to fit). For a virtual
    /// matrix, `dst` is cleared. Returns the block dims. This is the
    /// data-movement half of a one-sided get; the timing half lives in
    /// the backend.
    pub fn copy_block_into(&self, rank: usize, dst: &mut Vec<f64>) -> (usize, usize) {
        let (rows, cols) = self.block_dims(rank);
        match &self.backing {
            Backing::Virtual => dst.clear(),
            Backing::Real { arena, .. } => {
                let g = arena.read_guard(self.region_of(rank));
                dst.clear();
                dst.extend_from_slice(&g.slice()[..rows * cols]);
            }
        }
        (rows, cols)
    }

    /// Overwrite `rank`'s block from `src` (the data-movement half of a
    /// one-sided **put**; timing lives in the backend). No-op on
    /// virtual backing. `src` may be empty (modeled runs); otherwise it
    /// must hold exactly the block's elements, row-major.
    pub fn copy_block_from(&self, rank: usize, src: &[f64]) {
        let (rows, cols) = self.block_dims(rank);
        let Backing::Real { arena, .. } = &self.backing else {
            return;
        };
        if src.is_empty() && rows * cols > 0 {
            return; // modeled payload
        }
        assert_eq!(src.len(), rows * cols, "put payload size mismatch");
        let mut g = arena.write_guard(self.region_of(rank));
        g.slice_mut()[..rows * cols].copy_from_slice(src);
    }

    /// Accumulate `scale * src` into `rank`'s block elementwise (the
    /// data half of an ARMCI-style **accumulate**). No-op on virtual
    /// backing or empty payloads.
    pub fn acc_block_from(&self, rank: usize, scale: f64, src: &[f64]) {
        let (rows, cols) = self.block_dims(rank);
        let Backing::Real { arena, .. } = &self.backing else {
            return;
        };
        if src.is_empty() && rows * cols > 0 {
            return;
        }
        assert_eq!(src.len(), rows * cols, "acc payload size mismatch");
        let mut g = arena.write_guard(self.region_of(rank));
        for (d, s) in g.slice_mut()[..rows * cols].iter_mut().zip(src) {
            *d += scale * s;
        }
    }

    /// Scale `rank`'s block in place (the `β·C` pre-pass of a full
    /// `C ← α·op(A)op(B) + β·C`). No-op on virtual backing.
    pub fn scale_block(&self, rank: usize, beta: f64) {
        if beta == 1.0 {
            return;
        }
        let Backing::Real { arena, .. } = &self.backing else {
            return;
        };
        let (rows, cols) = self.block_dims(rank);
        let mut g = arena.write_guard(self.region_of(rank));
        let blk = &mut g.slice_mut()[..rows * cols];
        if beta == 0.0 {
            blk.fill(0.0);
        } else {
            for v in blk {
                *v *= beta;
            }
        }
    }

    /// Fill all blocks from a global matrix (real backing only; call
    /// from one thread between operations).
    ///
    /// # Panics
    /// Panics on shape mismatch or virtual backing.
    pub fn scatter(&self, global: &Matrix) {
        assert_eq!((global.rows(), global.cols()), (self.rows, self.cols));
        let Backing::Real { arena, .. } = &self.backing else {
            panic!("scatter() on a virtual DistMatrix");
        };
        for rank in 0..self.grid.nranks() {
            let (r0, c0) = self.block_origin(rank);
            let (br, bc) = self.block_dims(rank);
            let mut w = arena.write_guard(self.region_of(rank));
            let dst = w.slice_mut();
            for i in 0..br {
                let src = &global.as_slice()[(r0 + i) * self.cols + c0..][..bc];
                dst[i * bc..(i + 1) * bc].copy_from_slice(src);
            }
        }
    }

    /// Assemble the global matrix from all blocks (real backing only).
    pub fn gather(&self) -> Matrix {
        let Backing::Real { arena, .. } = &self.backing else {
            panic!("gather() on a virtual DistMatrix");
        };
        let mut out = Matrix::zeros(self.rows, self.cols);
        for rank in 0..self.grid.nranks() {
            let (r0, c0) = self.block_origin(rank);
            let (br, bc) = self.block_dims(rank);
            let g = arena.read_guard(self.region_of(rank));
            let src = g.slice();
            for i in 0..br {
                out.as_mut_slice()[(r0 + i) * self.cols + c0..][..bc]
                    .copy_from_slice(&src[i * bc..(i + 1) * bc]);
            }
        }
        out
    }

    /// Total bytes of the whole matrix.
    pub fn total_bytes(&self) -> u64 {
        (self.rows * self.cols * std::mem::size_of::<f64>()) as u64
    }
}

/// Read handle to one block: dims always, data only if real-backed.
pub struct BlockRead<'a> {
    rows: usize,
    cols: usize,
    guard: Option<crate::arena::ReadGuard<'a>>,
}

impl BlockRead<'_> {
    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Dense view of the block, if real-backed (the region's
    /// `rows · cols` prefix — shared-arena regions may be longer).
    pub fn mat(&self) -> Option<MatRef<'_>> {
        self.guard.as_ref().map(|g| {
            MatRef::new(
                self.rows,
                self.cols,
                self.cols,
                &g.slice()[..self.rows * self.cols],
            )
        })
    }
}

/// Write handle to one block.
pub struct BlockWrite<'a> {
    rows: usize,
    cols: usize,
    guard: Option<crate::arena::WriteGuard<'a>>,
}

impl BlockWrite<'_> {
    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Mutable dense view of the block, if real-backed (the region's
    /// `rows · cols` prefix).
    pub fn mat_mut(&mut self) -> Option<MatMut<'_>> {
        let (rows, cols) = (self.rows, self.cols);
        self.guard
            .as_mut()
            .map(|g| MatMut::new(rows, cols, cols, &mut g.slice_mut()[..rows * cols]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_is_near_even_and_covers() {
        for (n, parts) in [(10, 3), (7, 7), (5, 2), (100, 16), (3, 5)] {
            let mut total = 0;
            let mut prev_end = 0;
            for i in 0..parts {
                assert_eq!(chunk_start(n, parts, i), prev_end);
                let len = chunk_len(n, parts, i);
                total += len;
                prev_end += len;
            }
            assert_eq!(total, n, "n={n} parts={parts}");
            // Sizes differ by at most one.
            let sizes: Vec<usize> = (0..parts).map(|i| chunk_len(n, parts, i)).collect();
            let mx = *sizes.iter().max().unwrap();
            let mn = *sizes.iter().min().unwrap();
            assert!(mx - mn <= 1);
        }
    }

    #[test]
    fn block_dims_tile_the_matrix() {
        let grid = ProcGrid::new(3, 4);
        let m = DistMatrix::create(grid, 10, 9);
        let total: usize = (0..grid.nranks())
            .map(|r| {
                let (a, b) = m.block_dims(r);
                a * b
            })
            .sum();
        assert_eq!(total, 90);
        // Block origins + dims must land exactly on neighbours.
        let (o, _) = m.block_origin(grid.rank_at(1, 0));
        let (d, _) = m.block_dims(grid.rank_at(0, 0));
        assert_eq!(o, d);
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let grid = ProcGrid::new(2, 3);
        let m = DistMatrix::create(grid, 7, 8);
        let global = Matrix::random(7, 8, 99);
        m.scatter(&global);
        assert_eq!(m.gather(), global);
    }

    #[test]
    fn block_views_address_the_right_elements() {
        let grid = ProcGrid::new(2, 2);
        let m = DistMatrix::create(grid, 4, 4);
        let global = Matrix::from_fn(4, 4, |i, j| (i * 10 + j) as f64);
        m.scatter(&global);
        // Rank 3 owns the bottom-right 2x2 block.
        let b = m.read_block(3);
        let v = b.mat().unwrap();
        assert_eq!(v.at(0, 0), 22.0);
        assert_eq!(v.at(1, 1), 33.0);
    }

    #[test]
    fn write_block_modifies_gather() {
        let grid = ProcGrid::new(2, 2);
        let m = DistMatrix::create(grid, 4, 4);
        {
            let mut w = m.write_block(0);
            w.mat_mut().unwrap().fill(5.0);
        }
        let g = m.gather();
        assert_eq!(g[(0, 0)], 5.0);
        assert_eq!(g[(1, 1)], 5.0);
        assert_eq!(g[(2, 2)], 0.0);
    }

    #[test]
    fn copy_block_into_matches_read() {
        let grid = ProcGrid::new(2, 2);
        let m = DistMatrix::create(grid, 5, 5);
        let global = Matrix::random(5, 5, 7);
        m.scatter(&global);
        let mut buf = Vec::new();
        let (r, c) = m.copy_block_into(2, &mut buf);
        assert_eq!(buf.len(), r * c);
        let b = m.read_block(2);
        assert_eq!(b.mat().unwrap().data()[..r * c], buf[..]);
    }

    #[test]
    fn virtual_matrix_has_shape_but_no_data() {
        let grid = ProcGrid::new(4, 4);
        let m = DistMatrix::create_virtual(grid, 16000, 16000);
        assert!(!m.is_real());
        assert_eq!(m.block_dims(0), (4000, 4000));
        assert_eq!(m.block_bytes(0), 128_000_000);
        assert!(m.read_block(0).mat().is_none());
        let mut buf = vec![1.0];
        let (r, c) = m.copy_block_into(0, &mut buf);
        assert_eq!((r, c), (4000, 4000));
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "virtual DistMatrix")]
    fn scatter_virtual_panics() {
        let m = DistMatrix::create_virtual(ProcGrid::new(1, 1), 2, 2);
        m.scatter(&Matrix::zeros(2, 2));
    }

    #[test]
    fn uneven_distribution_block_origins() {
        // 5 rows over p=2: rows 0..3 and 3..5.
        let grid = ProcGrid::new(2, 1);
        let m = DistMatrix::create(grid, 5, 4);
        assert_eq!(m.block_dims(0), (3, 4));
        assert_eq!(m.block_dims(1), (2, 4));
        assert_eq!(m.block_origin(1), (3, 0));
    }

    #[test]
    fn owner_matches_grid() {
        let grid = ProcGrid::new(3, 2);
        let m = DistMatrix::create_virtual(grid, 6, 6);
        assert_eq!(m.owner(2, 1), grid.rank_at(2, 1));
    }

    #[test]
    fn mask_follows_block_coords_in_both_rank_orders() {
        let grid = ProcGrid::new(2, 3);
        let mask = BlockMask::from_fn(2, 3, |i, j| (i, j) == (1, 2));
        for order in [RankOrder::RowMajor, RankOrder::ColMajor] {
            let mut m = DistMatrix::create_with_order(grid, 6, 6, order, false);
            assert!(m.mask().is_none());
            assert!((0..grid.nranks()).all(|r| m.block_nonzero(r)));
            m.set_mask(mask.clone());
            for r in 0..grid.nranks() {
                let (bi, bj) = m.block_coords(r);
                assert_eq!(m.block_nonzero(r), (bi, bj) == (1, 2), "{order:?} rank {r}");
            }
            assert_eq!(m.mask().unwrap().nnz(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "mask shape must match")]
    fn mismatched_mask_shape_panics() {
        let mut m = DistMatrix::create_virtual(ProcGrid::new(2, 2), 4, 4);
        m.set_mask(BlockMask::full(3, 3));
    }
}

#[cfg(test)]
mod put_acc_tests {
    use super::*;

    #[test]
    fn put_overwrites_a_block() {
        let grid = ProcGrid::new(2, 2);
        let m = DistMatrix::create(grid, 4, 4);
        let payload = vec![7.0; 4];
        m.copy_block_from(3, &payload);
        let b = m.read_block(3);
        assert!(b.mat().unwrap().data()[..4].iter().all(|&v| v == 7.0));
    }

    #[test]
    fn acc_accumulates_scaled() {
        let grid = ProcGrid::new(1, 1);
        let m = DistMatrix::create(grid, 2, 2);
        m.copy_block_from(0, &[1.0, 2.0, 3.0, 4.0]);
        m.acc_block_from(0, 0.5, &[2.0, 2.0, 2.0, 2.0]);
        let b = m.read_block(0);
        assert_eq!(b.mat().unwrap().data(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn scale_block_handles_zero_and_identity() {
        let grid = ProcGrid::new(1, 1);
        let m = DistMatrix::create(grid, 2, 2);
        m.copy_block_from(0, &[1.0, f64::NAN, 3.0, 4.0]);
        m.scale_block(0, 1.0); // no-op, NaN preserved
        assert!(m.read_block(0).mat().unwrap().data()[1].is_nan());
        m.scale_block(0, 0.0); // must clear even NaN
        assert!(m
            .read_block(0)
            .mat()
            .unwrap()
            .data()
            .iter()
            .all(|&v| v == 0.0));
    }

    #[test]
    fn virtual_put_acc_are_noops() {
        let grid = ProcGrid::new(2, 2);
        let m = DistMatrix::create_virtual(grid, 8, 8);
        m.copy_block_from(0, &[]);
        m.acc_block_from(1, 2.0, &[]);
        m.scale_block(2, 0.0);
    }

    #[test]
    #[should_panic(expected = "put payload size mismatch")]
    fn put_wrong_size_panics() {
        let grid = ProcGrid::new(1, 1);
        let m = DistMatrix::create(grid, 2, 2);
        m.copy_block_from(0, &[1.0]);
    }
}
