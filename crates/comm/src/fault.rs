//! Seeded fault injection: stragglers, get-latency spikes, rank death.
//!
//! The paper's headline claim is qualitative resilience — SRUMMA's
//! one-sided gets keep overlapping when a processor falls behind, where
//! SUMMA's collectives serialize on the slowest participant. This
//! module makes that claim testable by describing *hostile conditions*
//! as data: a [`FaultPlan`] is a small, seeded, serializable-in-spirit
//! description of which ranks are slow, which gets hiccup, and which
//! rank dies at which task index. The plan itself carries no clocks and
//! no randomness state — every query ([`FaultPlan::get_spike`]) is a
//! pure function of `(seed, rank, sequence index)`, so the same plan
//! produces the same fault schedule on every backend and every rerun.
//!
//! Two application styles share the one plan:
//!
//! * the **simulator** reads the plan natively and applies it in
//!   virtual time (`SimOptions::with_faults`): a straggler's compute
//!   charges and its two-sided message costs scale by its factor, get
//!   spikes add to the modeled transfer latency, and the whole run
//!   stays bit-for-bit deterministic;
//! * the **wall-clock backends** (threads, executor) wrap their
//!   communicator in a [`ChaosComm`] decorator, which injects real
//!   sleeps after compute and on spiked gets. Wall-clock timing is
//!   never deterministic, but the *fault schedule* (who is slow, which
//!   get spikes, who dies when) still is — which is what the chaos
//!   property suite relies on for reproduction.
//!
//! The asymmetry between one-sided and two-sided traffic is the heart
//! of the model (§13 of DESIGN.md): a straggling host still *serves*
//! one-sided gets at full speed, because ARMCI gets are satisfied by
//! the NIC/memory system without the remote CPU in the loop — but a
//! two-sided message cannot complete until both hosts' MPI progress
//! engines run, so messages touching a straggler scale by its factor.

use crate::comm::{Comm, GetHandle};
use crate::dist::DistMatrix;
use srumma_dense::{GemmConfig, MatMut, MatRef, Op, Rng};
use srumma_model::Topology;
use srumma_trace::Recorder;
use std::time::{Duration, Instant};

/// Fail-stop death of one rank: after it has executed `after_tasks` of
/// its own SRUMMA tasks, it stops mid-run and its remaining work must
/// be re-executed by survivors (executor backend only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankDeath {
    /// The rank that dies.
    pub rank: usize,
    /// How many of its own tasks it completes before dying. A value at
    /// or beyond the rank's task count means it never actually dies.
    pub after_tasks: usize,
}

/// A seeded, deterministic description of injected faults.
///
/// Construct with [`FaultPlan::healthy`], [`FaultPlan::single_straggler`]
/// or [`FaultPlan::random_stragglers`], then refine with the builder
/// methods. Cloning is cheap (one `Vec<f64>` of rank factors).
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed driving the per-get spike schedule (and recorded so a
    /// failing test can print one number that reproduces everything).
    pub seed: u64,
    /// Per-rank slowdown factors (≥ 1.0); empty means all-healthy.
    slow: Vec<f64>,
    /// Probability that any given get issued by a rank is spiked.
    spike_prob: f64,
    /// Extra latency per spiked get (virtual seconds under simulation,
    /// real sleep seconds under [`ChaosComm`]).
    spike_seconds: f64,
    /// At most one fail-stop death (executor backend only).
    pub death: Option<RankDeath>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn healthy() -> Self {
        FaultPlan {
            seed: 0,
            slow: Vec::new(),
            spike_prob: 0.0,
            spike_seconds: 0.0,
            death: None,
        }
    }

    /// Exactly one straggler: `rank` runs `factor`× slower.
    pub fn single_straggler(nranks: usize, rank: usize, factor: f64) -> Self {
        assert!(rank < nranks, "straggler rank {rank} out of {nranks}");
        assert!(factor >= 1.0, "slowdown factor must be >= 1.0");
        let mut slow = vec![1.0; nranks];
        slow[rank] = factor;
        FaultPlan {
            seed: 0,
            slow,
            spike_prob: 0.0,
            spike_seconds: 0.0,
            death: None,
        }
    }

    /// A seeded random plan (stragglers only — no deaths, no spikes):
    /// each rank independently straggles with probability ~30%, with a
    /// factor in `[1.25, 3.0)`. Add spikes or a death with the builder
    /// methods.
    pub fn random_stragglers(seed: u64, nranks: usize) -> Self {
        let mut rng = Rng::new(seed ^ 0xFA17_F1A9);
        let slow = (0..nranks)
            .map(|_| {
                if rng.chance(0.3) {
                    1.25 + 1.75 * (rng.unit() + 1.0) / 2.0
                } else {
                    1.0
                }
            })
            .collect();
        FaultPlan {
            seed,
            slow,
            spike_prob: 0.0,
            spike_seconds: 0.0,
            death: None,
        }
    }

    /// Spike each issued get with probability `prob`, adding `seconds`
    /// of latency. Which gets are spiked is a pure function of
    /// `(seed, rank, get index)` — deterministic across backends.
    pub fn with_get_spikes(mut self, prob: f64, seconds: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob));
        assert!(seconds >= 0.0);
        self.spike_prob = prob;
        self.spike_seconds = seconds;
        self
    }

    /// Kill `rank` after it has run `after_tasks` of its own tasks
    /// (executor backend only — the sim and thread backends reject
    /// plans with deaths).
    pub fn with_death(mut self, rank: usize, after_tasks: usize) -> Self {
        self.death = Some(RankDeath { rank, after_tasks });
        self
    }

    /// Sanity-check the plan against a run's rank count.
    pub fn validate(&self, nranks: usize) {
        assert!(
            self.slow.is_empty() || self.slow.len() == nranks,
            "fault plan sized for {} ranks, run has {nranks}",
            self.slow.len()
        );
        for (r, &f) in self.slow.iter().enumerate() {
            assert!(f >= 1.0, "rank {r} slowdown factor {f} < 1.0");
        }
        if let Some(d) = self.death {
            assert!(d.rank < nranks, "dead rank {} out of {nranks}", d.rank);
            assert!(nranks >= 2, "rank death needs at least one survivor");
        }
    }

    /// True when the plan injects nothing.
    pub fn is_healthy(&self) -> bool {
        self.slow.iter().all(|&f| f == 1.0) && self.spike_prob == 0.0 && self.death.is_none()
    }

    /// `rank`'s slowdown factor (1.0 = healthy).
    pub fn slow_factor(&self, rank: usize) -> f64 {
        self.slow.get(rank).copied().unwrap_or(1.0)
    }

    /// The factor applied to a **two-sided** message between `a` and
    /// `b`: MPI progress is host-driven at both endpoints, so the
    /// slower of the two gates the message.
    pub fn msg_factor(&self, a: usize, b: usize) -> f64 {
        self.slow_factor(a).max(self.slow_factor(b))
    }

    /// Extra latency (seconds) for the `seq`-th get issued by `rank`;
    /// 0.0 when unspiked. Pure and deterministic: hash of
    /// `(seed, rank, seq)`.
    pub fn get_spike(&self, rank: usize, seq: u64) -> f64 {
        if self.spike_prob <= 0.0 || self.spike_seconds <= 0.0 {
            return 0.0;
        }
        let key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((rank as u64) << 32 | 0xC4A0)
            .wrapping_add(seq);
        if Rng::new(key).chance(self.spike_prob) {
            self.spike_seconds
        } else {
            0.0
        }
    }
}

/// Forwarding impl so a decorator (or any generic driver) can wrap a
/// borrowed communicator: `ChaosComm::new(&mut comm, plan)`.
impl<C: Comm + ?Sized> Comm for &mut C {
    fn rank(&self) -> usize {
        (**self).rank()
    }
    fn nranks(&self) -> usize {
        (**self).nranks()
    }
    fn topology(&self) -> Topology {
        (**self).topology()
    }
    fn same_domain(&self, other: usize) -> bool {
        (**self).same_domain(other)
    }
    fn prefer_direct_access(&self, owner: usize) -> bool {
        (**self).prefer_direct_access(owner)
    }
    fn now(&self) -> f64 {
        (**self).now()
    }
    fn recorder(&mut self) -> &mut Recorder {
        (**self).recorder()
    }
    fn barrier(&mut self) {
        (**self).barrier()
    }
    fn ws_grow_count(&self) -> u64 {
        (**self).ws_grow_count()
    }
    fn configure_gemm(&mut self, cfg: &GemmConfig) {
        (**self).configure_gemm(cfg)
    }
    fn nbget(&mut self, mat: &DistMatrix, owner: usize, buf: &mut Vec<f64>) -> GetHandle {
        (**self).nbget(mat, owner, buf)
    }
    fn wait(&mut self, h: GetHandle) {
        (**self).wait(h)
    }
    fn get(&mut self, mat: &DistMatrix, owner: usize, buf: &mut Vec<f64>) {
        (**self).get(mat, owner, buf)
    }
    fn nbput(&mut self, mat: &DistMatrix, owner: usize, data: &[f64]) -> GetHandle {
        (**self).nbput(mat, owner, data)
    }
    fn put(&mut self, mat: &DistMatrix, owner: usize, data: &[f64]) {
        (**self).put(mat, owner, data)
    }
    fn acc(&mut self, mat: &DistMatrix, owner: usize, scale: f64, data: &[f64]) {
        (**self).acc(mat, owner, scale, data)
    }
    fn fence(&mut self) {
        (**self).fence()
    }
    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &mut self,
        ta: Op,
        tb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: Option<MatRef<'_>>,
        b: Option<MatRef<'_>>,
        c: Option<MatMut<'_>>,
        direct: bool,
        label: &str,
    ) {
        (**self).gemm(ta, tb, m, n, k, alpha, a, b, c, direct, label)
    }
    fn send(&mut self, dst: usize, tag: u64, data: &[f64], bytes: u64) {
        (**self).send(dst, tag, data, bytes)
    }
    fn recv(&mut self, src: usize, tag: u64, buf: &mut Vec<f64>, bytes: u64) {
        (**self).recv(src, tag, buf, bytes)
    }
    #[allow(clippy::too_many_arguments)]
    fn sendrecv(
        &mut self,
        dst: usize,
        tag: u64,
        send_data: &[f64],
        send_bytes: u64,
        src: usize,
        recv_buf: &mut Vec<f64>,
        recv_bytes: u64,
    ) {
        (**self).sendrecv(dst, tag, send_data, send_bytes, src, recv_buf, recv_bytes)
    }
}

/// Don't let one injected delay wedge a test run: a single sleep is
/// capped here regardless of how large the measured compute was.
const MAX_INJECTED_SLEEP: f64 = 0.05;

/// Fault-injecting decorator for **wall-clock** backends: wraps any
/// [`Comm`] (by value or `&mut`) and applies a [`FaultPlan`] with real
/// sleeps — compute on a straggler is stretched to `factor ×` its
/// measured duration, and spiked gets sleep their extra latency at
/// issue. Rank death is *not* handled here (it is a scheduling event,
/// owned by the chaos rank task in `srumma-core`), and the simulator
/// applies plans natively in virtual time instead of through this
/// decorator.
pub struct ChaosComm<C: Comm> {
    inner: C,
    plan: FaultPlan,
    gets_issued: u64,
}

impl<C: Comm> ChaosComm<C> {
    /// Wrap `inner`, applying `plan` for `inner.rank()`.
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        ChaosComm {
            inner,
            plan,
            gets_issued: 0,
        }
    }

    /// The wrapped communicator (for backend-specific calls like
    /// `ExecComm::barrier_try`).
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Mutable access to the wrapped communicator.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn sleep(seconds: f64) {
        std::thread::sleep(Duration::from_secs_f64(seconds.min(MAX_INJECTED_SLEEP)));
    }
}

impl<C: Comm> Comm for ChaosComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }
    fn nranks(&self) -> usize {
        self.inner.nranks()
    }
    fn topology(&self) -> Topology {
        self.inner.topology()
    }
    fn same_domain(&self, other: usize) -> bool {
        self.inner.same_domain(other)
    }
    fn prefer_direct_access(&self, owner: usize) -> bool {
        self.inner.prefer_direct_access(owner)
    }
    fn now(&self) -> f64 {
        self.inner.now()
    }
    fn recorder(&mut self) -> &mut Recorder {
        self.inner.recorder()
    }
    fn ws_grow_count(&self) -> u64 {
        self.inner.ws_grow_count()
    }
    fn configure_gemm(&mut self, cfg: &GemmConfig) {
        self.inner.configure_gemm(cfg)
    }
    fn barrier(&mut self) {
        self.inner.barrier()
    }

    fn nbget(&mut self, mat: &DistMatrix, owner: usize, buf: &mut Vec<f64>) -> GetHandle {
        let seq = self.gets_issued;
        self.gets_issued += 1;
        let h = self.inner.nbget(mat, owner, buf);
        let spike = self.plan.get_spike(self.inner.rank(), seq);
        if spike > 0.0 {
            self.inner.recorder().count_delay();
            Self::sleep(spike);
        }
        h
    }
    fn wait(&mut self, h: GetHandle) {
        self.inner.wait(h)
    }
    fn nbput(&mut self, mat: &DistMatrix, owner: usize, data: &[f64]) -> GetHandle {
        self.inner.nbput(mat, owner, data)
    }
    fn acc(&mut self, mat: &DistMatrix, owner: usize, scale: f64, data: &[f64]) {
        self.inner.acc(mat, owner, scale, data)
    }
    fn fence(&mut self) {
        self.inner.fence()
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &mut self,
        ta: Op,
        tb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: Option<MatRef<'_>>,
        b: Option<MatRef<'_>>,
        c: Option<MatMut<'_>>,
        direct: bool,
        label: &str,
    ) {
        let f = self.plan.slow_factor(self.inner.rank());
        if f <= 1.0 {
            return self
                .inner
                .gemm(ta, tb, m, n, k, alpha, a, b, c, direct, label);
        }
        let t0 = Instant::now();
        self.inner
            .gemm(ta, tb, m, n, k, alpha, a, b, c, direct, label);
        let stretch = t0.elapsed().as_secs_f64() * (f - 1.0);
        self.inner.recorder().count_delay();
        Self::sleep(stretch);
    }

    fn send(&mut self, dst: usize, tag: u64, data: &[f64], bytes: u64) {
        self.inner.send(dst, tag, data, bytes)
    }
    fn recv(&mut self, src: usize, tag: u64, buf: &mut Vec<f64>, bytes: u64) {
        self.inner.recv(src, tag, buf, bytes)
    }
    #[allow(clippy::too_many_arguments)]
    fn sendrecv(
        &mut self,
        dst: usize,
        tag: u64,
        send_data: &[f64],
        send_bytes: u64,
        src: usize,
        recv_buf: &mut Vec<f64>,
        recv_bytes: u64,
    ) {
        self.inner
            .sendrecv(dst, tag, send_data, send_bytes, src, recv_buf, recv_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spike_schedule_is_pure_and_seed_dependent() {
        let p = FaultPlan::random_stragglers(42, 8).with_get_spikes(0.5, 1e-3);
        let a: Vec<f64> = (0..64).map(|s| p.get_spike(3, s)).collect();
        let b: Vec<f64> = (0..64).map(|s| p.get_spike(3, s)).collect();
        assert_eq!(a, b, "same (seed, rank, seq) must spike identically");
        assert!(
            a.iter().any(|&s| s > 0.0) && a.contains(&0.0),
            "a 50% spike rate over 64 gets should mix hits and misses"
        );
        let q = FaultPlan::random_stragglers(43, 8).with_get_spikes(0.5, 1e-3);
        let c: Vec<f64> = (0..64).map(|s| q.get_spike(3, s)).collect();
        assert_ne!(a, c, "different seeds should produce different schedules");
    }

    #[test]
    fn straggler_factors_respect_bounds() {
        for seed in 0..32 {
            let p = FaultPlan::random_stragglers(seed, 16);
            p.validate(16);
            for r in 0..16 {
                let f = p.slow_factor(r);
                assert!((1.0..=3.0).contains(&f), "factor {f} out of bounds");
            }
        }
        let p = FaultPlan::single_straggler(8, 5, 2.0);
        assert_eq!(p.slow_factor(5), 2.0);
        assert_eq!(p.slow_factor(0), 1.0);
        assert_eq!(p.msg_factor(0, 5), 2.0, "either endpoint gates a message");
        assert_eq!(p.msg_factor(1, 2), 1.0);
    }

    #[test]
    fn healthy_plan_injects_nothing() {
        let p = FaultPlan::healthy();
        assert!(p.is_healthy());
        p.validate(1024);
        assert_eq!(p.slow_factor(7), 1.0);
        assert_eq!(p.get_spike(7, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one survivor")]
    fn death_on_a_single_rank_run_is_rejected() {
        FaultPlan::healthy().with_death(0, 0).validate(1);
    }
}
