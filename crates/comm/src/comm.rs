//! The backend-independent communication interface.
//!
//! Every parallel algorithm in `srumma-core` (SRUMMA itself, Cannon,
//! SUMMA/pdgemm) is written once against this trait and runs unchanged
//! under the virtual-time simulator ([`crate::simbackend::SimComm`]) or
//! on real host threads ([`crate::threadbackend::ThreadComm`]).
//!
//! The surface deliberately mirrors what the paper's implementation
//! used from ARMCI and MPI:
//!
//! * **one-sided**: nonblocking block get (`nbget`/`wait`), the
//!   locality query (`same_domain`, `prefer_direct_access`);
//! * **two-sided**: `send`/`recv`/`sendrecv` for the message-passing
//!   baselines;
//! * **compute**: `gemm` charges the serial-kernel time (and executes
//!   it when real data is present), because on the simulated machines
//!   compute cost comes from the machine model, not the host.

use crate::dist::DistMatrix;
use srumma_dense::{GemmConfig, MatMut, MatRef, Op};
use srumma_model::Topology;
use srumma_trace::Recorder;

/// Completion handle for a nonblocking get.
#[derive(Debug)]
pub enum GetHandle {
    /// Operation already complete (thread backend, or intra-domain
    /// blocking copies).
    Ready,
    /// Pending simulated transfer.
    Sim(srumma_sim::TransferId),
    /// Pending transfer on the per-rank virtual-clock backend
    /// ([`crate::virt::VirtualComm`]); the index keys its internal
    /// completion-time table.
    Virt(usize),
}

/// A fetched (or directly accessible) operand block: dimensions always,
/// element data only when the run carries real matrices.
#[derive(Clone, Copy)]
pub struct BlockRef<'a> {
    /// Block rows.
    pub rows: usize,
    /// Block cols.
    pub cols: usize,
    /// Dense row-major view, if real.
    pub data: Option<MatRef<'a>>,
}

impl<'a> BlockRef<'a> {
    /// View over a fetch buffer filled by `nbget` (empty buffer ⇒
    /// virtual).
    pub fn from_buffer(buf: &'a [f64], rows: usize, cols: usize) -> Self {
        if buf.is_empty() {
            BlockRef {
                rows,
                cols,
                data: None,
            }
        } else {
            BlockRef {
                rows,
                cols,
                data: Some(MatRef::new(rows, cols, cols, buf)),
            }
        }
    }
}

/// The C block being accumulated into (owner-computes).
pub struct BlockMut<'a> {
    /// Block rows.
    pub rows: usize,
    /// Block cols.
    pub cols: usize,
    /// Mutable dense view, if real.
    pub data: Option<MatMut<'a>>,
}

/// Backend-independent rank communicator.
pub trait Comm {
    /// This rank's id.
    fn rank(&self) -> usize;

    /// Total ranks.
    fn nranks(&self) -> usize;

    /// Rank→node placement.
    fn topology(&self) -> Topology;

    /// Whether `other` shares this rank's shared-memory domain.
    fn same_domain(&self, other: usize) -> bool {
        self.topology().same_domain(self.rank(), other)
    }

    /// Whether `owner`'s block should be passed *directly* to the
    /// serial kernel (cacheable shared memory — the Altix flavor)
    /// rather than copied first.
    fn prefer_direct_access(&self, owner: usize) -> bool;

    /// Current time (virtual seconds under simulation, wall seconds on
    /// the thread backend).
    fn now(&self) -> f64;

    /// This rank's trace recorder. One implementation serves every
    /// backend: the algorithm layer records task-level spans (against
    /// [`Comm::now`], so the same instrumentation yields virtual times
    /// under the simulator and wall times on threads) and bumps the
    /// always-on fetch/direct/task counters through this handle.
    /// Recording spans is a no-op (one branch, label unevaluated) when
    /// the run was started without tracing.
    fn recorder(&mut self) -> &mut Recorder;

    /// Full barrier.
    fn barrier(&mut self);

    /// How many times this rank's reusable gemm packing workspace has
    /// grown (0 on backends without one). Buffer demand depends only on
    /// the kernel's cache block sizes, so a healthy rank grows at most
    /// once — the batched driver asserts this holds across *whole
    /// batches*, not just single multiplies.
    fn ws_grow_count(&self) -> u64 {
        0
    }

    /// Reconfigure this rank's serial-kernel workspace (micro-kernel,
    /// cache blocks, pack layout, Strassen cutoff). Idempotent: a
    /// config equal to the one already in effect must keep the existing
    /// workspace (and its buffers) untouched, so repeated machine
    /// setups preserve the grow-at-most-once guarantee tracked by
    /// [`Comm::ws_grow_count`]. Backends without a real workspace
    /// (modeled compute) may ignore it.
    fn configure_gemm(&mut self, _cfg: &GemmConfig) {}

    /// Nonblocking one-sided fetch of `owner`'s block of `mat` into
    /// `buf` (cleared/filled as appropriate). The *data* lands
    /// immediately (operands are immutable during an operation, so
    /// eager copying is indistinguishable); the returned handle carries
    /// the *timing*.
    fn nbget(&mut self, mat: &DistMatrix, owner: usize, buf: &mut Vec<f64>) -> GetHandle;

    /// Block until a nonblocking get completes (in model time).
    fn wait(&mut self, h: GetHandle);

    /// Blocking get.
    fn get(&mut self, mat: &DistMatrix, owner: usize, buf: &mut Vec<f64>) {
        let h = self.nbget(mat, owner, buf);
        self.wait(h);
    }

    /// Nonblocking one-sided **put**: overwrite `owner`'s block of
    /// `mat` with `data` (which must hold the whole block row-major, or
    /// be empty in modeled runs). Data lands immediately; the handle
    /// carries the timing. The caller is responsible for the ARMCI
    /// access discipline (no concurrent access to the target block).
    fn nbput(&mut self, mat: &DistMatrix, owner: usize, data: &[f64]) -> GetHandle;

    /// Blocking put.
    fn put(&mut self, mat: &DistMatrix, owner: usize, data: &[f64]) {
        let h = self.nbput(mat, owner, data);
        self.wait(h);
    }

    /// One-sided **accumulate**: `owner`'s block += `scale · data`
    /// (ARMCI_Acc). Blocking; the target-side addition costs the
    /// owner's CPU in the model, exactly like LAPI/ARMCI accumulate
    /// handlers did.
    fn acc(&mut self, mat: &DistMatrix, owner: usize, scale: f64, data: &[f64]);

    /// `ARMCI_Fence`-style completion: block until every one-sided
    /// operation this rank has issued is complete at its target. (The
    /// thread backend completes operations eagerly, so this is a no-op
    /// there; under the simulator it advances the clock past all
    /// outstanding transfers.)
    fn fence(&mut self);

    /// Charge (and, when data is present, execute) a serial block
    /// dgemm `C += α·op(A)·op(B)` of logical shape `m × n × k`.
    /// `direct` marks operands read in place from shared memory, which
    /// on non-cacheable machines (Cray X1) runs far below the copied
    /// kernel's rate.
    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &mut self,
        ta: Op,
        tb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: Option<MatRef<'_>>,
        b: Option<MatRef<'_>>,
        c: Option<MatMut<'_>>,
        direct: bool,
        label: &str,
    );

    /// Blocking tagged send of `bytes` logical bytes (payload `data`
    /// may be empty in modeled runs).
    fn send(&mut self, dst: usize, tag: u64, data: &[f64], bytes: u64);

    /// Blocking tagged receive into `buf` (cleared/filled); `bytes` is
    /// the expected logical size (drives the eager/rendezvous choice).
    fn recv(&mut self, src: usize, tag: u64, buf: &mut Vec<f64>, bytes: u64);

    /// Deadlock-free simultaneous exchange (the `MPI_Sendrecv` of the
    /// baselines' shift steps): send to `dst` while receiving from
    /// `src`.
    #[allow(clippy::too_many_arguments)]
    fn sendrecv(
        &mut self,
        dst: usize,
        tag: u64,
        send_data: &[f64],
        send_bytes: u64,
        src: usize,
        recv_buf: &mut Vec<f64>,
        recv_bytes: u64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_ref_from_real_buffer() {
        let buf = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = BlockRef::from_buffer(&buf, 2, 3);
        assert_eq!(b.rows, 2);
        assert_eq!(b.cols, 3);
        let m = b.data.unwrap();
        assert_eq!(m.at(1, 2), 6.0);
    }

    #[test]
    fn block_ref_from_empty_buffer_is_virtual() {
        let buf: Vec<f64> = vec![];
        let b = BlockRef::from_buffer(&buf, 100, 200);
        assert_eq!(b.rows, 100);
        assert!(b.data.is_none());
    }
}
