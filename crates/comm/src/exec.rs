//! The work-stealing rank executor: N logical ranks on W workers.
//!
//! `ThreadComm` spawns one OS thread per rank, which is faithful to the
//! paper's machines but collapses when the rank count exceeds the host
//! core count by orders of magnitude — exactly the oversubscribed
//! regime (256 "processors" on a laptop) where SRUMMA's task ordering
//! and prefetch pipeline are interesting to study. This backend
//! multiplexes the ranks onto a fixed pool of worker threads instead:
//!
//! * each worker owns a [Chase–Lev deque](crate::deque::WorkDeque) of
//!   runnable task ids and steals from its siblings when its own deque
//!   runs dry;
//! * ranks written as **resumable state machines** (the [`RankTask`]
//!   trait — SRUMMA's task loop in `srumma-core` is one) are polled
//!   directly on the workers: a barrier or message wait returns
//!   [`Step::Park`] and costs a deque operation, not a blocked OS
//!   thread, so thousands of ranks need only W threads in total;
//! * ranks written in plain blocking style (SUMMA, Cannon — any
//!   [`Comm`] closure) run on dedicated *gated* threads that execute
//!   only while holding a worker's **loan**: every blocking point
//!   inside [`ExecComm`] releases the loan and parks, so runnable
//!   concurrency never exceeds W and the barrier convoy of hundreds of
//!   preempted threads disappears.
//!
//! Scheduling itself is observable: steals, parks and resumes are
//! counted (and traced as [`TraceKind::Sched`] events when tracing is
//! on), and every run's [`RunStats`] carries an
//! [`ExecStats`](srumma_trace::ExecStats) with the steal rate and
//! worker-pool occupancy.
//!
//! A panicking rank poisons the whole executor, mirroring the
//! thread backend's poison barrier: parked gated threads unwind with
//! "executor poisoned", state machines are dropped, and the original
//! panic payload is rethrown from the run entry point.

use crate::comm::{Comm, GetHandle};
use crate::deque::WorkDeque;
use crate::dist::DistMatrix;
use srumma_dense::{dgemm_ws, GemmConfig, GemmWorkspace, MatMut, MatRef, Op};
use srumma_model::Topology;
use srumma_trace::{Counters, ExecStats, Recorder, RunStats, TraceEvent, TraceKind};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

type Payload = Box<dyn Any + Send + 'static>;
/// One queued message: `(src, tag, data)`.
type Mail = (usize, u64, Vec<f64>);
/// Per-rank trace drainage: merged events plus `(rank, counters)`.
type TraceBag = (Vec<TraceEvent>, Vec<(usize, Counters)>);

/// What a state-machine rank task reports back from one `step` call.
pub enum Step<T> {
    /// The rank finished; `T` is its output.
    Done(T),
    /// More work immediately available: reschedule (the worker re-runs
    /// it unless a thief takes it first).
    Yield,
    /// Blocked on an event (barrier, message). The task must already
    /// have registered itself as a waiter — the matching wake-up
    /// re-enqueues it; a wake that raced the park is detected and the
    /// task is re-queued immediately.
    Park,
}

/// A logical rank as a resumable state machine, polled on the worker
/// pool instead of owning an OS thread. The task owns its [`ExecComm`]
/// (built by [`exec_run_tasks`] and handed to the factory).
pub trait RankTask: Send {
    /// The rank's output (what the blocking closure would return).
    type Out: Send;

    /// Advance until done, a natural yield point, or a blocking
    /// condition.
    fn step(&mut self) -> Step<Self::Out>;

    /// Drain trace events and counters after [`Step::Done`] (typically
    /// forwarding to the owned `ExecComm`'s recorder).
    fn take_trace(&mut self) -> (Vec<TraceEvent>, Counters) {
        (Vec::new(), Counters::default())
    }
}

/// Where a rank currently stands with the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// In a deque or the injector, waiting for a worker.
    Queued,
    /// Being polled (FSM) or holding a worker's loan (gated thread).
    Running,
    /// Parked on an event; a wake moves it back to `Queued`.
    Parked,
}

/// Per-task scheduler state (one per logical rank, both kinds).
struct TaskSt {
    phase: Phase,
    /// A wake arrived while the task was not parked: consume it at the
    /// next park attempt instead of sleeping through it.
    pending_wake: bool,
    /// Gated threads only: the loan has been granted / returned.
    granted: bool,
    returned: bool,
    done: bool,
}

struct TaskCtl {
    st: Mutex<TaskSt>,
    /// The gated rank thread waits here for its loan.
    gate: Condvar,
    /// The lending worker waits here for the loan back.
    loan: Condvar,
}

struct Global {
    /// Woken tasks, consumed by any worker (wake-ups go here rather
    /// than into a private deque so a parked worker can be notified).
    injector: VecDeque<usize>,
    /// Workers currently asleep on `work_cv`.
    sleepers: usize,
}

/// Multi-fence synchronization state: the classic split barrier
/// generalized so every rank may be **several fences ahead** of the
/// slowest rank.
///
/// Every rank arrives at fences in the same program order, so a rank's
/// `i`-th arrival is globally fence `i`. Fence `f` is complete once
/// every rank has made at least `f + 1` arrivals — i.e. when
/// `completed = min(arrived) > f`. A plain count/generation barrier
/// breaks here: a fast rank's arrival at fence `f + 1` must not count
/// toward fence `f`'s quorum, which is exactly what per-rank arrival
/// counters capture. The classic full barrier is the special case where
/// every rank waits on its own latest fence before arriving at the
/// next.
struct FenceSt {
    /// Arrivals per rank (rank `r`'s next arrival opens fence
    /// `arrived[r]`).
    arrived: Vec<u64>,
    /// Fences fully passed: all fences `f < completed` are complete.
    completed: u64,
    /// Parked ranks: `(rank, fence awaited)`.
    waiters: Vec<(usize, u64)>,
    /// Ranks whose fence obligations have been retired (declared dead
    /// under fault injection): the frontier ignores them so batches
    /// drain instead of waiting forever on arrivals that cannot come.
    retired: Vec<bool>,
}

impl FenceSt {
    /// The completion frontier over **live** ranks: `min(arrived)`
    /// among non-retired ranks. With every rank retired there is no one
    /// left to wait for, so every fence counts as complete.
    fn frontier(&self) -> u64 {
        self.arrived
            .iter()
            .zip(&self.retired)
            .filter(|&(_, &dead)| !dead)
            .map(|(&a, _)| a)
            .min()
            .unwrap_or(u64::MAX)
    }
}

/// The shared scheduler: everything both `ExecComm` and the workers
/// touch. Deliberately non-generic — the (output-typed) task storage
/// lives with the run entry points.
struct SchedCore {
    nranks: usize,
    workers: usize,
    trace: bool,
    /// Emulated node layout every rank's `ExecComm` reports. Defaults
    /// to one cacheable domain; the `_with_topology` entry points
    /// override it for hierarchical schedules.
    topo: Topology,
    t0: Instant,
    global: Mutex<Global>,
    work_cv: Condvar,
    deques: Vec<WorkDeque>,
    tasks: Vec<TaskCtl>,
    fences: Mutex<FenceSt>,
    /// Per-destination mailboxes (send scans are per-`src` FIFO).
    mail: Vec<Mutex<VecDeque<Mail>>>,
    remaining: AtomicUsize,
    poisoned: AtomicBool,
    payload: Mutex<Option<Payload>>,
    // Scheduling counters (always on; they are a handful of relaxed
    // adds per scheduling decision).
    local_pops: AtomicU64,
    steals: AtomicU64,
    injector_pops: AtomicU64,
    parks: AtomicU64,
    worker_parks: AtomicU64,
    /// Worker-side `Sched` trace events, merged into the run trace.
    sched_events: Mutex<Vec<TraceEvent>>,
}

/// Lock tolerating mutex poisoning: a panicking rank must still be able
/// to poison the executor, and survivors must be able to observe it.
fn relock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl SchedCore {
    fn new(nranks: usize, workers: usize, trace: bool, topo: Option<Topology>) -> Arc<Self> {
        let topo = topo.unwrap_or_else(|| Topology::single_domain(nranks));
        assert_eq!(topo.nranks(), nranks, "topology rank count mismatch");
        Arc::new(SchedCore {
            nranks,
            workers,
            trace,
            topo,
            t0: Instant::now(),
            global: Mutex::new(Global {
                injector: VecDeque::new(),
                sleepers: 0,
            }),
            work_cv: Condvar::new(),
            deques: (0..workers).map(|_| WorkDeque::new(nranks + 1)).collect(),
            tasks: (0..nranks)
                .map(|_| TaskCtl {
                    st: Mutex::new(TaskSt {
                        phase: Phase::Queued,
                        pending_wake: false,
                        granted: false,
                        returned: false,
                        done: false,
                    }),
                    gate: Condvar::new(),
                    loan: Condvar::new(),
                })
                .collect(),
            fences: Mutex::new(FenceSt {
                arrived: vec![0; nranks],
                completed: 0,
                waiters: Vec::new(),
                retired: vec![false; nranks],
            }),
            mail: (0..nranks).map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicUsize::new(nranks),
            poisoned: AtomicBool::new(false),
            payload: Mutex::new(None),
            local_pops: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            injector_pops: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            worker_parks: AtomicU64::new(0),
            sched_events: Mutex::new(Vec::new()),
        })
    }

    fn now(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Record the first panic payload, raise the poison flag, and wake
    /// every parked thread so the run unwinds instead of hanging.
    fn poison(&self, p: Payload) {
        {
            let mut slot = relock(&self.payload);
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        self.poisoned.store(true, Ordering::SeqCst);
        {
            let _g = relock(&self.global);
            self.work_cv.notify_all();
        }
        for t in &self.tasks {
            let _st = relock(&t.st);
            t.gate.notify_all();
            t.loan.notify_all();
        }
    }

    /// Push a runnable task where any worker can find it, waking a
    /// sleeper if there is one.
    fn inject(&self, id: usize) {
        let mut g = relock(&self.global);
        g.injector.push_back(id);
        if g.sleepers > 0 {
            self.work_cv.notify_one();
        }
    }

    /// Deliver a wake-up to `id`: re-enqueue it if parked, otherwise
    /// remember the wake so the task's next park attempt consumes it
    /// (the classic lost-wakeup guard).
    fn wake(&self, id: usize) {
        let mut st = relock(&self.tasks[id].st);
        if st.done {
            return;
        }
        if st.phase == Phase::Parked {
            st.phase = Phase::Queued;
            drop(st);
            self.inject(id);
        } else {
            st.pending_wake = true;
        }
    }

    /// Mark `id` finished and, when it was the last, wake everyone so
    /// the workers can exit.
    fn task_done(&self, id: usize) {
        relock(&self.tasks[id].st).done = true;
        if self.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _g = relock(&self.global);
            self.work_cv.notify_all();
        }
    }

    // ---- gated-thread loan protocol ---------------------------------

    /// Rank-thread side: block until a worker grants the run loan.
    /// Panics (unwinding the rank thread) when the executor has been
    /// poisoned — this is how a panic elsewhere releases parked peers.
    fn gate_wait_grant(&self, id: usize) {
        let mut st = relock(&self.tasks[id].st);
        loop {
            if self.is_poisoned() {
                drop(st);
                panic!("executor poisoned: another rank panicked");
            }
            if st.granted {
                st.granted = false;
                st.phase = Phase::Running;
                return;
            }
            st = self.tasks[id]
                .gate
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Rank-thread side: hand the loan back to the lending worker
    /// (on completion or before parking).
    fn gate_release(&self, id: usize) {
        let mut st = relock(&self.tasks[id].st);
        st.returned = true;
        self.tasks[id].loan.notify_all();
    }

    /// Rank-thread side: park until woken. If a wake already raced in,
    /// the loan is kept and the caller simply re-checks its condition.
    fn gate_park(&self, id: usize) {
        {
            let mut st = relock(&self.tasks[id].st);
            if st.pending_wake {
                st.pending_wake = false;
                return;
            }
            st.phase = Phase::Parked;
            st.returned = true;
            self.tasks[id].loan.notify_all();
        }
        self.parks.fetch_add(1, Ordering::Relaxed);
        self.gate_wait_grant(id);
    }

    /// Worker side: grant the loan to gated task `id` and sleep until
    /// it comes back (the rank thread blocked or finished). The worker
    /// slot counts as busy for the whole loan — that thread *is* the
    /// slot's work.
    fn grant_and_lend(&self, id: usize) {
        let mut st = relock(&self.tasks[id].st);
        if st.done {
            return; // stale queue entry for a finished rank
        }
        st.phase = Phase::Running;
        st.granted = true;
        st.returned = false;
        self.tasks[id].gate.notify_all();
        while !st.returned && !self.is_poisoned() {
            st = self.tasks[id]
                .loan
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    // ---- epoch fences -----------------------------------------------

    /// Arrive at this rank's next fence; returns the fence index (the
    /// rank's 0-based arrival count). Arrival never blocks — waiting is
    /// a separate [`Self::fence_check`] / park loop, which is what lets
    /// a rank arrive at several fences (stage entry `i+1`, finish entry
    /// `i`) before anyone waits on the first.
    fn fence_arrive(&self, id: usize) -> u64 {
        let mut b = relock(&self.fences);
        let fence = b.arrived[id];
        b.arrived[id] += 1;
        self.fence_advance(b);
        fence
    }

    /// Recompute the live frontier and release any waiters now behind
    /// it (wake after dropping the lock — wake() takes per-task locks).
    fn fence_advance(&self, mut b: MutexGuard<'_, FenceSt>) {
        let frontier = b.frontier();
        if frontier > b.completed {
            b.completed = frontier;
            let mut woken = Vec::new();
            b.waiters.retain(|&(rank, f)| {
                if f < frontier {
                    woken.push(rank);
                    false
                } else {
                    true
                }
            });
            drop(b);
            for w in woken {
                self.wake(w);
            }
        }
    }

    /// Retire a dead rank's fence obligations: it is removed from every
    /// current and future fence quorum, so in-flight batches drain
    /// instead of hanging on arrivals that can never come. Idempotent.
    /// Note this releases *synchronization* only — re-executing the
    /// dead rank's outstanding work is the chaos rank task's job.
    fn retire_rank(&self, rank: usize) {
        let mut b = relock(&self.fences);
        if b.retired[rank] {
            return;
        }
        b.retired[rank] = true;
        self.fence_advance(b);
    }

    /// Whether fence `f` has completed; if not, register `id` as a
    /// waiter (idempotently) so the completing arrival wakes it.
    fn fence_check(&self, id: usize, f: u64) -> bool {
        let mut b = relock(&self.fences);
        if b.completed > f {
            return true;
        }
        if !b.waiters.iter().any(|&(r, wf)| r == id && wf == f) {
            b.waiters.push((id, f));
        }
        false
    }

    // ---- mailboxes --------------------------------------------------

    fn mail_send(&self, dst: usize, src: usize, tag: u64, data: Vec<f64>) {
        relock(&self.mail[dst]).push_back((src, tag, data));
        self.wake(dst);
    }

    /// Take the oldest message from `src`, if any (per-edge FIFO).
    fn mail_recv(&self, dst: usize, src: usize) -> Option<(u64, Vec<f64>)> {
        let mut q = relock(&self.mail[dst]);
        let pos = q.iter().position(|m| m.0 == src)?;
        let (_, tag, data) = q.remove(pos).expect("position came from this queue");
        Some((tag, data))
    }

    /// Record an instantaneous scheduling marker into the worker-side
    /// event stream (tracing runs only).
    fn sched_event(&self, local: &mut Vec<TraceEvent>, rank: usize, label: String) {
        if self.trace {
            let t = self.now();
            local.push(TraceEvent {
                rank,
                t0: t,
                t1: t,
                kind: TraceKind::Sched,
                label,
                bytes: 0,
            });
        }
    }
}

// ---- the per-rank communicator -------------------------------------

/// How this `ExecComm`'s rank is scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskMode {
    /// Dedicated thread, loan-gated at blocking points.
    Gate,
    /// State machine polled on the workers ([`RankTask`]).
    Fsm,
}

/// Per-rank communicator on the work-stealing executor. Shares the
/// thread backend's data model — one cacheable shared-memory domain,
/// eager memcpy gets, wall-clock time — but its blocking points
/// cooperate with the scheduler instead of blocking an OS thread.
pub struct ExecComm {
    rank: usize,
    nranks: usize,
    mode: TaskMode,
    core: Arc<SchedCore>,
    recorder: Recorder,
    ws: GemmWorkspace,
    /// Split-barrier bookkeeping for FSM ranks: fence index awaited and
    /// the span start time.
    arrived: Option<(u64, f64)>,
}

impl ExecComm {
    fn new(core: Arc<SchedCore>, rank: usize, mode: TaskMode) -> Self {
        let trace = core.trace;
        ExecComm {
            rank,
            nranks: core.nranks,
            mode,
            core,
            recorder: Recorder::new(rank, trace),
            ws: GemmWorkspace::new(),
            arrived: None,
        }
    }

    #[inline]
    fn span_start(&self) -> f64 {
        if self.recorder.is_enabled() {
            self.core.now()
        } else {
            0.0
        }
    }

    #[inline]
    fn span_end<F: FnOnce() -> String>(&mut self, kind: TraceKind, t0: f64, bytes: u64, label: F) {
        if self.recorder.is_enabled() {
            let t1 = self.core.now();
            self.recorder.span(kind, t0, t1, bytes, label);
        }
    }

    /// Record that this rank is about to park (tracing runs only).
    fn mark_park(&mut self) {
        if self.recorder.is_enabled() {
            let t = self.core.now();
            self.recorder
                .span(TraceKind::Sched, t, t, 0, || "park".to_string());
        }
    }

    /// Arrive at this rank's next **epoch fence** and return its index.
    /// Never blocks. Every rank must arrive at fences in the same
    /// program order (the batched driver's per-entry "staged" and
    /// "done" fences); fence `f` completes once every rank has made its
    /// `f`-th arrival. Pair with [`Self::fence_try`] to wait.
    pub fn fence_arrive(&mut self) -> u64 {
        self.core.fence_arrive(self.rank)
    }

    /// Poll fence `f` (state-machine ranks): `true` once it completed;
    /// otherwise this rank is registered as a waiter and the caller
    /// should return [`Step::Park`] — the completing arrival re-enqueues
    /// the task.
    pub fn fence_try(&mut self, f: u64) -> bool {
        self.core.fence_check(self.rank, f)
    }

    /// Arrive at the next fence **on behalf of another rank** — the
    /// re-execution protocol's proxy arrival: a survivor that has
    /// finished a dead rank's outstanding tasks discharges that rank's
    /// barrier obligation for it, so the closing fence cannot complete
    /// before the re-executed work has actually been done.
    pub fn fence_arrive_for(&mut self, rank: usize) -> u64 {
        self.core.fence_arrive(rank)
    }

    /// Retire `rank` from every current and future fence quorum
    /// (fail-stop death with **no** re-execution — batches drain, but
    /// nobody vouches for the dead rank's unfinished work). Prefer
    /// [`Self::fence_arrive_for`] when survivors re-execute.
    pub fn fence_retire(&mut self, rank: usize) {
        self.core.retire_rank(rank);
    }

    /// Wake every other rank (a dying rank calls this after publishing
    /// its orphaned work, so parked survivors re-check for it).
    pub fn wake_peers(&mut self) {
        for r in 0..self.nranks {
            if r != self.rank {
                self.core.wake(r);
            }
        }
    }

    /// Nonblocking barrier for state-machine ranks: arrive on the first
    /// call, then poll. Returns `true` once the barrier has passed —
    /// until then the caller should return [`Step::Park`] (the poll
    /// registered it as a waiter). Built on the fence machinery: a full
    /// barrier is an arrival immediately followed by a wait on the same
    /// fence. Panics when the executor has been poisoned, mirroring the
    /// gated threads' `gate_wait_grant` — a parked FSM rank re-stepped
    /// after a peer's panic must unwind, not re-park.
    pub fn barrier_try(&mut self) -> bool {
        if self.core.is_poisoned() {
            panic!("executor poisoned: another rank panicked");
        }
        match self.arrived {
            Some((f, t0)) => {
                if self.core.fence_check(self.rank, f) {
                    self.arrived = None;
                    self.span_end(TraceKind::Barrier, t0, 0, String::new);
                    true
                } else {
                    false
                }
            }
            None => {
                let t0 = self.span_start();
                let f = self.core.fence_arrive(self.rank);
                if self.core.fence_check(self.rank, f) {
                    self.span_end(TraceKind::Barrier, t0, 0, String::new);
                    true
                } else {
                    self.arrived = Some((f, t0));
                    self.mark_park();
                    false
                }
            }
        }
    }

    /// Drain recorded events and counters (run teardown).
    fn take_trace(&mut self) -> (Vec<TraceEvent>, Counters) {
        self.recorder.take()
    }

    /// Classify a transfer against the emulated topology: which level of
    /// the (pretend) memory hierarchy served it.
    #[inline]
    fn classify(&mut self, serve: usize, bytes: u64) {
        if serve == self.rank {
            return;
        }
        if self.core.topo.same_domain(self.rank, serve) {
            self.recorder.count_intragroup(bytes);
        } else {
            self.recorder.count_internode(bytes);
        }
    }
}

impl Comm for ExecComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    fn topology(&self) -> Topology {
        self.core.topo
    }

    fn prefer_direct_access(&self, owner: usize) -> bool {
        // Host shared memory is cacheable, as on the thread backend —
        // but an emulated cluster topology makes off-node blocks
        // fetch-only so hierarchical staging moves real bytes.
        self.core.topo.same_domain(self.rank, owner)
    }

    fn now(&self) -> f64 {
        self.core.now()
    }

    fn recorder(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    fn ws_grow_count(&self) -> u64 {
        self.ws.grow_count()
    }

    fn configure_gemm(&mut self, cfg: &GemmConfig) {
        // Idempotent: an unchanged effective config keeps the existing
        // workspace so pooled workers never re-grow their buffers.
        let resolved = GemmWorkspace::configured(*cfg);
        if resolved.config() != self.ws.config() {
            self.ws = resolved;
        }
    }

    fn barrier(&mut self) {
        let t0 = self.span_start();
        match self.mode {
            TaskMode::Fsm => panic!(
                "state-machine rank tasks must use ExecComm::barrier_try and Step::Park, \
                 not the blocking Comm::barrier"
            ),
            TaskMode::Gate => {
                let f = self.core.fence_arrive(self.rank);
                while !self.core.fence_check(self.rank, f) {
                    self.mark_park();
                    self.core.gate_park(self.rank);
                }
            }
        }
        self.span_end(TraceKind::Barrier, t0, 0, String::new);
    }

    fn nbget(&mut self, mat: &DistMatrix, owner: usize, buf: &mut Vec<f64>) -> GetHandle {
        let t0 = self.span_start();
        let (rows, cols) = mat.copy_block_into(owner, buf);
        let bytes = (rows * cols * 8) as u64;
        self.recorder.count_fetch(bytes);
        self.classify(mat.cost_rank(owner), bytes);
        self.span_end(TraceKind::Transfer, t0, bytes, || format!("get<-{owner}"));
        GetHandle::Ready
    }

    fn wait(&mut self, h: GetHandle) {
        match h {
            GetHandle::Ready => {}
            GetHandle::Sim(_) | GetHandle::Virt(_) => {
                unreachable!("executor backend issues no simulated transfers")
            }
        }
    }

    fn nbput(&mut self, mat: &DistMatrix, owner: usize, data: &[f64]) -> GetHandle {
        let t0 = self.span_start();
        mat.copy_block_from(owner, data);
        let bytes = mat.block_bytes(owner);
        self.classify(mat.cost_rank(owner), bytes);
        self.span_end(TraceKind::Transfer, t0, bytes, || format!("put->{owner}"));
        GetHandle::Ready
    }

    fn acc(&mut self, mat: &DistMatrix, owner: usize, scale: f64, data: &[f64]) {
        let t0 = self.span_start();
        mat.acc_block_from(owner, scale, data);
        let bytes = mat.block_bytes(owner);
        self.classify(mat.cost_rank(owner), bytes);
        self.span_end(TraceKind::Transfer, t0, bytes, || format!("acc->{owner}"));
    }

    fn fence(&mut self) {
        // Data movement is eager: already complete at the target.
    }

    fn gemm(
        &mut self,
        ta: Op,
        tb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: Option<MatRef<'_>>,
        b: Option<MatRef<'_>>,
        c: Option<MatMut<'_>>,
        _direct: bool,
        label: &str,
    ) {
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        let (Some(a), Some(b), Some(c)) = (a, b, c) else {
            panic!("executor backend requires real-backed matrices ({m}x{n}x{k} block had none)");
        };
        let t0 = self.span_start();
        dgemm_ws(ta, tb, alpha, a, b, 1.0, c, &mut self.ws);
        self.span_end(TraceKind::Compute, t0, 0, || label.to_string());
    }

    fn send(&mut self, dst: usize, tag: u64, data: &[f64], _bytes: u64) {
        self.core.mail_send(dst, self.rank, tag, data.to_vec());
    }

    fn recv(&mut self, src: usize, tag: u64, buf: &mut Vec<f64>, _bytes: u64) {
        let t0 = self.span_start();
        loop {
            if let Some((got_tag, payload)) = self.core.mail_recv(self.rank, src) {
                assert_eq!(
                    got_tag, tag,
                    "tag mismatch receiving from {src}: expected {tag}, got {got_tag}"
                );
                *buf = payload;
                break;
            }
            match self.mode {
                TaskMode::Gate => {
                    self.mark_park();
                    self.core.gate_park(self.rank);
                }
                TaskMode::Fsm => panic!(
                    "state-machine rank tasks must not call the blocking Comm::recv \
                     (no message-passing algorithm runs as an FSM yet)"
                ),
            }
        }
        self.span_end(TraceKind::Wait, t0, 0, || format!("recv<-{src}"));
    }

    fn sendrecv(
        &mut self,
        dst: usize,
        tag: u64,
        send_data: &[f64],
        send_bytes: u64,
        src: usize,
        recv_buf: &mut Vec<f64>,
        recv_bytes: u64,
    ) {
        // Mailboxes are buffered: send first, then receive — no deadlock.
        self.send(dst, tag, send_data, send_bytes);
        self.recv(src, tag, recv_buf, recv_bytes);
    }
}

// ---- worker pool ----------------------------------------------------

/// Task storage for one run: either a pollable state machine or a
/// marker that a dedicated gated thread embodies the rank.
enum TaskSlot<'env, T> {
    Fsm(Mutex<Option<Box<dyn RankTask<Out = T> + Send + 'env>>>),
    Gate,
}

/// Pick the next task: own deque first (LIFO, cache-hot), then the
/// injector (fresh wake-ups), then steal from siblings.
fn find_work(core: &SchedCore, me: usize, events: &mut Vec<TraceEvent>) -> Option<usize> {
    if let Some(id) = core.deques[me].pop() {
        core.local_pops.fetch_add(1, Ordering::Relaxed);
        return Some(id);
    }
    {
        let mut g = relock(&core.global);
        if let Some(id) = g.injector.pop_front() {
            drop(g);
            core.injector_pops.fetch_add(1, Ordering::Relaxed);
            core.sched_event(events, id, format!("resume w{me}"));
            return Some(id);
        }
    }
    for off in 1..core.workers {
        let victim = (me + off) % core.workers;
        if let Some(id) = core.deques[victim].steal() {
            core.steals.fetch_add(1, Ordering::Relaxed);
            core.sched_event(events, id, format!("steal w{me}<-w{victim}"));
            return Some(id);
        }
    }
    None
}

/// Sleep until work may exist again. Returns `false` when the run is
/// over (all tasks done, or poisoned).
fn park_worker(core: &SchedCore) -> bool {
    let mut g = relock(&core.global);
    loop {
        if core.is_poisoned() || core.remaining.load(Ordering::SeqCst) == 0 {
            return false;
        }
        if !g.injector.is_empty() || core.deques.iter().any(|d| !d.is_empty()) {
            return true;
        }
        core.worker_parks.fetch_add(1, Ordering::Relaxed);
        g.sleepers += 1;
        g = core.work_cv.wait(g).unwrap_or_else(|e| e.into_inner());
        g.sleepers -= 1;
    }
}

/// Run one scheduled task id: poll an FSM or lend the slot to a gated
/// thread.
fn run_one<'env, T: Send>(
    core: &SchedCore,
    slots: &[TaskSlot<'env, T>],
    outputs: &[Mutex<Option<T>>],
    collect: &Mutex<TraceBag>,
    me: usize,
    id: usize,
    events: &mut Vec<TraceEvent>,
) {
    match &slots[id] {
        TaskSlot::Gate => core.grant_and_lend(id),
        TaskSlot::Fsm(cell) => {
            let Some(mut task) = relock(cell).take() else {
                return; // stale queue entry for a finished rank
            };
            relock(&core.tasks[id].st).phase = Phase::Running;
            match catch_unwind(AssertUnwindSafe(|| task.step())) {
                Err(p) => {
                    drop(task);
                    core.poison(p);
                }
                Ok(Step::Done(out)) => {
                    let (ev, ctr) = task.take_trace();
                    {
                        let mut bag = relock(collect);
                        bag.0.extend(ev);
                        bag.1.push((id, ctr));
                    }
                    *relock(&outputs[id]) = Some(out);
                    core.task_done(id);
                }
                Ok(Step::Yield) => {
                    // The box must be back in its cell before the id is
                    // visible in any queue (a thief may run it at once).
                    *relock(cell) = Some(task);
                    {
                        let mut st = relock(&core.tasks[id].st);
                        st.pending_wake = false;
                        st.phase = Phase::Queued;
                    }
                    core.deques[me].push(id);
                }
                Ok(Step::Park) => {
                    *relock(cell) = Some(task);
                    let mut st = relock(&core.tasks[id].st);
                    if st.pending_wake {
                        // The wake raced the park: requeue immediately.
                        st.pending_wake = false;
                        st.phase = Phase::Queued;
                        drop(st);
                        core.deques[me].push(id);
                    } else {
                        st.phase = Phase::Parked;
                        drop(st);
                        core.parks.fetch_add(1, Ordering::Relaxed);
                        core.sched_event(events, id, format!("park w{me}"));
                    }
                }
            }
        }
    }
}

/// One worker thread's life. Returns its busy seconds (time spent
/// running tasks or lending its slot to a gated thread).
fn worker_loop<'env, T: Send>(
    core: &SchedCore,
    slots: &[TaskSlot<'env, T>],
    outputs: &[Mutex<Option<T>>],
    collect: &Mutex<TraceBag>,
    me: usize,
) -> f64 {
    let mut busy = 0.0;
    let mut events: Vec<TraceEvent> = Vec::new();
    loop {
        if core.is_poisoned() {
            break;
        }
        let Some(id) = find_work(core, me, &mut events) else {
            if park_worker(core) {
                continue;
            }
            break;
        };
        let t = Instant::now();
        run_one(core, slots, outputs, collect, me, id, &mut events);
        busy += t.elapsed().as_secs_f64();
    }
    if !events.is_empty() {
        relock(&core.sched_events).extend(events);
    }
    busy
}

// ---- run entry points -----------------------------------------------

/// Result of an executor run (mirrors `ThreadRunResult`).
#[derive(Debug)]
pub struct ExecRunResult<T> {
    /// Per-rank outputs.
    pub outputs: Vec<T>,
    /// Wall-clock duration of the parallel section (seconds).
    pub wall_seconds: f64,
    /// Recorded trace events (empty unless traced), merged across ranks
    /// and workers, sorted by start time.
    pub trace: Vec<TraceEvent>,
    /// Derived metrics; `stats.exec` always carries the scheduling
    /// counters (steal rate, occupancy) for executor runs.
    pub stats: RunStats,
}

fn assemble<T>(
    core: &Arc<SchedCore>,
    outputs: Vec<Mutex<Option<T>>>,
    collect: Mutex<TraceBag>,
    busy: Vec<f64>,
    wall_seconds: f64,
) -> ExecRunResult<T> {
    if let Some(p) = relock(&core.payload).take() {
        resume_unwind(p);
    }
    let (mut events, counters) = collect.into_inner().unwrap_or_else(|e| e.into_inner());
    events.extend(relock(&core.sched_events).drain(..));
    events.sort_by(|a, b| a.t0.total_cmp(&b.t0).then(a.rank.cmp(&b.rank)));
    let mut stats = RunStats::from_events(core.nranks, &events);
    for (rank, ctr) in &counters {
        let rs = &mut stats.ranks[*rank];
        rs.bytes_shm = ctr.bytes_fetched;
        rs.transfers = ctr.blocks_fetched;
        rs.absorb_counters(ctr);
    }
    stats.exec = Some(ExecStats {
        workers: core.workers,
        local_pops: core.local_pops.load(Ordering::Relaxed),
        steals: core.steals.load(Ordering::Relaxed),
        injector_pops: core.injector_pops.load(Ordering::Relaxed),
        parks: core.parks.load(Ordering::Relaxed),
        worker_parks: core.worker_parks.load(Ordering::Relaxed),
        busy_seconds: busy.iter().sum(),
        wall_seconds,
    });
    if stats.makespan == 0.0 {
        stats.makespan = wall_seconds;
    }
    let outputs = outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every rank completed (run was not poisoned)")
        })
        .collect();
    ExecRunResult {
        outputs,
        wall_seconds,
        trace: events,
        stats,
    }
}

/// Seed the worker deques round-robin with all task ids.
fn seed(core: &SchedCore) {
    for id in 0..core.nranks {
        core.deques[id % core.workers].push(id);
    }
}

/// The worker-pool size an executor run will actually use for a
/// `requested` count: `0` means *auto* (host parallelism, capped at 8 —
/// the same default every bench harness uses), and any request is
/// clamped to `[1, nranks]` since a worker beyond one-per-rank can
/// never hold a task. All `exec_run*` entry points apply this, so the
/// auto-tuner's probe path can pass worker candidates — including the
/// auto sentinel — straight through and still report the *resolved*
/// count it measured.
pub fn resolve_workers(requested: usize, nranks: usize) -> usize {
    let requested = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(8)
    } else {
        requested
    };
    requested.clamp(1, nranks.max(1))
}

/// Run `body` once per rank on the executor: every rank gets a
/// dedicated thread, but only `workers` of them run at any moment — a
/// blocking point inside hands the worker slot to another rank instead
/// of convoying the OS scheduler. Tracing off.
pub fn exec_run<T, F>(nranks: usize, workers: usize, body: F) -> ExecRunResult<T>
where
    T: Send,
    F: Fn(&mut ExecComm) -> T + Sync,
{
    exec_run_gated(nranks, workers, false, None, body)
}

/// [`exec_run`] with wall-clock event tracing (plus `Sched` steal /
/// park / resume markers).
pub fn exec_run_traced<T, F>(nranks: usize, workers: usize, body: F) -> ExecRunResult<T>
where
    T: Send,
    F: Fn(&mut ExecComm) -> T + Sync,
{
    exec_run_gated(nranks, workers, true, None, body)
}

/// [`exec_run`] with an emulated cluster topology: every rank's
/// `ExecComm` reports `topo`, off-node blocks lose direct access, and
/// transfers are classified intra-group vs inter-node.
pub fn exec_run_with_topology<T, F>(
    nranks: usize,
    workers: usize,
    topo: Topology,
    body: F,
) -> ExecRunResult<T>
where
    T: Send,
    F: Fn(&mut ExecComm) -> T + Sync,
{
    exec_run_gated(nranks, workers, false, Some(topo), body)
}

fn exec_run_gated<T, F>(
    nranks: usize,
    workers: usize,
    trace: bool,
    topo: Option<Topology>,
    body: F,
) -> ExecRunResult<T>
where
    T: Send,
    F: Fn(&mut ExecComm) -> T + Sync,
{
    assert!(nranks > 0);
    let workers = resolve_workers(workers, nranks);
    let core = SchedCore::new(nranks, workers, trace, topo);
    seed(&core);
    let slots: Vec<TaskSlot<'_, T>> = (0..nranks).map(|_| TaskSlot::Gate).collect();
    let outputs: Vec<Mutex<Option<T>>> = (0..nranks).map(|_| Mutex::new(None)).collect();
    let collect: Mutex<TraceBag> = Mutex::new((Vec::new(), Vec::new()));
    let mut busy = vec![0.0f64; workers];
    let t_run = Instant::now();
    std::thread::scope(|scope| {
        for rank in 0..nranks {
            let core = Arc::clone(&core);
            let body = &body;
            let outputs = &outputs;
            let collect = &collect;
            scope.spawn(move || {
                let mut comm = ExecComm::new(Arc::clone(&core), rank, TaskMode::Gate);
                let res = catch_unwind(AssertUnwindSafe(|| {
                    core.gate_wait_grant(rank);
                    body(&mut comm)
                }));
                match res {
                    Ok(v) => {
                        let (ev, ctr) = comm.take_trace();
                        {
                            let mut bag = relock(collect);
                            bag.0.extend(ev);
                            bag.1.push((rank, ctr));
                        }
                        *relock(&outputs[rank]) = Some(v);
                        core.task_done(rank);
                        core.gate_release(rank);
                    }
                    Err(p) => {
                        // Return the loan so the lending worker resumes,
                        // then poison (first payload wins — secondary
                        // "executor poisoned" panics never overwrite the
                        // original).
                        core.gate_release(rank);
                        core.poison(p);
                    }
                }
            });
        }
        for (w, busy_slot) in busy.iter_mut().enumerate() {
            let core = Arc::clone(&core);
            let slots = &slots;
            let outputs = &outputs;
            let collect = &collect;
            scope.spawn(move || {
                *busy_slot = worker_loop(&core, slots, outputs, collect, w);
            });
        }
    });
    let wall = t_run.elapsed().as_secs_f64();
    assemble(&core, outputs, collect, busy, wall)
}

/// Run `nranks` state-machine rank tasks on `workers` workers — no
/// per-rank OS threads at all. `factory` is called once per rank with
/// that rank's [`ExecComm`] and returns the task that owns it.
pub fn exec_run_tasks<'env, T, F>(
    nranks: usize,
    workers: usize,
    trace: bool,
    factory: F,
) -> ExecRunResult<T>
where
    T: Send,
    F: FnMut(ExecComm) -> Box<dyn RankTask<Out = T> + Send + 'env>,
{
    exec_run_tasks_with_topology(nranks, workers, trace, None, factory)
}

/// [`exec_run_tasks`] with an optional emulated cluster topology (see
/// [`exec_run_with_topology`]).
pub fn exec_run_tasks_with_topology<'env, T, F>(
    nranks: usize,
    workers: usize,
    trace: bool,
    topo: Option<Topology>,
    mut factory: F,
) -> ExecRunResult<T>
where
    T: Send,
    F: FnMut(ExecComm) -> Box<dyn RankTask<Out = T> + Send + 'env>,
{
    assert!(nranks > 0);
    let workers = resolve_workers(workers, nranks);
    let core = SchedCore::new(nranks, workers, trace, topo);
    let slots: Vec<TaskSlot<'env, T>> = (0..nranks)
        .map(|rank| {
            let comm = ExecComm::new(Arc::clone(&core), rank, TaskMode::Fsm);
            TaskSlot::Fsm(Mutex::new(Some(factory(comm))))
        })
        .collect();
    seed(&core);
    let outputs: Vec<Mutex<Option<T>>> = (0..nranks).map(|_| Mutex::new(None)).collect();
    let collect: Mutex<TraceBag> = Mutex::new((Vec::new(), Vec::new()));
    let mut busy = vec![0.0f64; workers];
    let t_run = Instant::now();
    std::thread::scope(|scope| {
        for (w, busy_slot) in busy.iter_mut().enumerate() {
            let core = Arc::clone(&core);
            let slots = &slots;
            let outputs = &outputs;
            let collect = &collect;
            scope.spawn(move || {
                *busy_slot = worker_loop(&core, slots, outputs, collect, w);
            });
        }
    });
    let wall = t_run.elapsed().as_secs_f64();
    assemble(&core, outputs, collect, busy, wall)
}

#[cfg(test)]
mod tests {
    //! Epoch/generation counter edges under fault injection: these need
    //! the private `SchedCore`, so they live here rather than in the
    //! integration suite.
    use super::*;

    #[test]
    fn retiring_a_dead_rank_completes_its_pending_fences() {
        let core = SchedCore::new(3, 1, false, None);
        // Mid-batch: ranks 0 and 1 arrive at fence 0, rank 2 is dead
        // and never will. The fence must not complete yet...
        assert_eq!(core.fence_arrive(0), 0);
        assert_eq!(core.fence_arrive(1), 0);
        assert!(!core.fence_check(0, 0));
        // ...until the dead rank's obligations are retired, which both
        // completes fence 0 and removes rank 2 from future quorums.
        core.retire_rank(2);
        assert!(core.fence_check(0, 0));
        assert_eq!(core.fence_arrive(0), 1);
        assert_eq!(core.fence_arrive(1), 1);
        assert!(core.fence_check(1, 1), "retired rank gates no later fence");
    }

    #[test]
    fn retirement_releases_parked_waiters() {
        let core = SchedCore::new(2, 1, false, None);
        core.fence_arrive(0);
        // Rank 0 is parked waiting on fence 0; rank 1 dies without
        // arriving. Retirement must move the waiter back to the queue
        // (the batch-drain path: survivors resume instead of hanging).
        assert!(!core.fence_check(0, 0));
        relock(&core.tasks[0].st).phase = Phase::Parked;
        core.retire_rank(1);
        assert_eq!(relock(&core.tasks[0].st).phase, Phase::Queued);
        assert!(core.fence_check(0, 0));
        // Idempotent: retiring again neither panics nor double-wakes.
        core.retire_rank(1);
    }

    #[test]
    fn proxy_arrival_discharges_a_dead_ranks_barrier() {
        let core = SchedCore::new(3, 1, false, None);
        // Ranks 0 and 1 arrive; rank 2 is dead. A survivor vouches for
        // it via fence_arrive(dead) — the re-execution handshake.
        core.fence_arrive(0);
        core.fence_arrive(1);
        assert!(!core.fence_check(0, 0));
        assert_eq!(core.fence_arrive(2), 0, "proxy arrival uses rank 2's count");
        assert!(core.fence_check(0, 0));
        assert!(core.fence_check(1, 0));
    }

    #[test]
    fn all_ranks_retired_completes_everything() {
        let core = SchedCore::new(2, 1, false, None);
        core.retire_rank(0);
        core.retire_rank(1);
        assert!(core.fence_check(0, 0));
        assert!(core.fence_check(1, 41));
    }

    #[test]
    fn barrier_try_after_poison_panics_instead_of_parking() {
        let core = SchedCore::new(2, 1, false, None);
        let mut comm = ExecComm::new(Arc::clone(&core), 0, TaskMode::Fsm);
        assert!(!comm.barrier_try(), "one arrival out of two cannot pass");
        core.poison(Box::new("boom"));
        let err = catch_unwind(AssertUnwindSafe(|| comm.barrier_try()))
            .expect_err("a parked rank re-stepped after poison must unwind");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("executor poisoned"),
            "unexpected panic message: {msg}"
        );
    }
}
