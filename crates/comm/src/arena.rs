//! The shared arena — our `ARMCI_Malloc`.
//!
//! ARMCI's collective allocator returns, to every process, the addresses
//! of *all* processes' segments, so that intra-node peers can load/store
//! each other's data directly. Here the "segments" are ranges of one
//! large `f64` allocation shared by all rank threads.
//!
//! ## Safety discipline
//!
//! Rust cannot statically check cross-thread aliasing through a shared
//! arena, so the discipline is the matrix-multiplication contract the
//! paper relies on (and that tests enforce dynamically in debug builds):
//!
//! * operand matrices (A, B) are **read-only** during an operation;
//! * each C block is written **only by its owner** ("owner computes");
//! * operations are separated by barriers.
//!
//! Debug builds wire every access through an epoch checker
//! ([`AccessChecker`]) that counts concurrent readers/writers per
//! region and panics on a read/write or write/write overlap — a tiny
//! race detector for the discipline itself.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::Arc;

/// A shared, fixed-size `f64` arena accessible from every rank thread.
pub struct SharedArena {
    data: UnsafeCell<Box<[f64]>>,
    /// One reader/writer counter per region (region granularity is
    /// chosen by the allocator: one region per rank block).
    checkers: Vec<AccessChecker>,
    /// Region table: `(offset, len)` per region id.
    regions: Vec<(usize, usize)>,
}

// SAFETY: all aliasing is governed by the documented discipline; debug
// builds verify it dynamically. The arena itself is just bytes.
unsafe impl Sync for SharedArena {}
unsafe impl Send for SharedArena {}

impl SharedArena {
    /// Collectively allocate an arena with the given region layout
    /// (`regions[i] = length of region i`, in elements). Regions are
    /// laid out contiguously. Returns the arena and each region's
    /// starting offset.
    pub fn new(region_lens: &[usize]) -> (Arc<Self>, Vec<usize>) {
        let total: usize = region_lens.iter().sum();
        let mut offsets = Vec::with_capacity(region_lens.len());
        let mut acc = 0;
        for &len in region_lens {
            offsets.push(acc);
            acc += len;
        }
        let regions = offsets
            .iter()
            .zip(region_lens)
            .map(|(&o, &l)| (o, l))
            .collect();
        let arena = Arc::new(SharedArena {
            data: UnsafeCell::new(vec![0.0; total].into_boxed_slice()),
            checkers: region_lens.iter().map(|_| AccessChecker::new()).collect(),
            regions,
        });
        (arena, offsets)
    }

    /// Total length in elements.
    pub fn len(&self) -> usize {
        unsafe { (&*self.data.get()).len() }
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of regions.
    pub fn nregions(&self) -> usize {
        self.regions.len()
    }

    /// `(offset, len)` of region `id`.
    pub fn region(&self, id: usize) -> (usize, usize) {
        self.regions[id]
    }

    /// Immutable view of region `id`.
    ///
    /// # Safety
    /// Caller must uphold the arena discipline: no concurrent mutable
    /// access to this region. Debug builds verify dynamically.
    pub unsafe fn region_slice(&self, id: usize) -> &[f64] {
        let (off, len) = self.regions[id];
        debug_assert!(
            self.checkers[id].would_allow_read(),
            "region {id} is being written"
        );
        let data = unsafe { &*self.data.get() };
        &data[off..off + len]
    }

    /// Mutable view of region `id`.
    ///
    /// # Safety
    /// Caller must uphold the arena discipline: this region must not be
    /// accessed by any other thread for the lifetime of the returned
    /// slice. Debug builds verify dynamically.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn region_slice_mut(&self, id: usize) -> &mut [f64] {
        let (off, len) = self.regions[id];
        debug_assert!(
            self.checkers[id].would_allow_write(),
            "region {id} is being accessed"
        );
        let data = unsafe { &mut *self.data.get() };
        &mut data[off..off + len]
    }

    /// RAII-guarded read access (used by the debug checker paths).
    pub fn read_guard(&self, id: usize) -> ReadGuard<'_> {
        self.checkers[id].begin_read();
        ReadGuard { arena: self, id }
    }

    /// RAII-guarded write access.
    pub fn write_guard(&self, id: usize) -> WriteGuard<'_> {
        self.checkers[id].begin_write();
        WriteGuard { arena: self, id }
    }
}

/// Debug-build access conflict detector: a counter that is positive
/// while readers hold the region and `-1` while a writer does.
pub struct AccessChecker {
    state: AtomicI32,
}

impl AccessChecker {
    fn new() -> Self {
        AccessChecker {
            state: AtomicI32::new(0),
        }
    }

    fn begin_read(&self) {
        let prev = self.state.fetch_add(1, Ordering::AcqRel);
        assert!(
            prev >= 0,
            "arena discipline violation: read of a region under write"
        );
    }

    fn end_read(&self) {
        self.state.fetch_sub(1, Ordering::AcqRel);
    }

    fn begin_write(&self) {
        let prev = self
            .state
            .compare_exchange(0, -1, Ordering::AcqRel, Ordering::Acquire);
        assert!(
            prev.is_ok(),
            "arena discipline violation: write of a region under access"
        );
    }

    fn end_write(&self) {
        self.state.store(0, Ordering::Release);
    }

    fn would_allow_read(&self) -> bool {
        self.state.load(Ordering::Acquire) >= 0
    }

    fn would_allow_write(&self) -> bool {
        let s = self.state.load(Ordering::Acquire);
        s == 0 || s == -1 // -1: our own guard already holds it
    }
}

/// Guard proving read access to a region.
pub struct ReadGuard<'a> {
    arena: &'a SharedArena,
    id: usize,
}

impl ReadGuard<'_> {
    /// The protected slice.
    pub fn slice(&self) -> &[f64] {
        // SAFETY: the guard holds the read count.
        unsafe { self.arena.region_slice(self.id) }
    }
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        self.arena.checkers[self.id].end_read();
    }
}

/// Guard proving exclusive write access to a region.
pub struct WriteGuard<'a> {
    arena: &'a SharedArena,
    id: usize,
}

impl WriteGuard<'_> {
    /// The protected slice.
    pub fn slice_mut(&mut self) -> &mut [f64] {
        // SAFETY: the guard holds exclusive access.
        unsafe { self.arena.region_slice_mut(self.id) }
    }
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        self.arena.checkers[self.id].end_write();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous() {
        let (arena, offsets) = SharedArena::new(&[3, 5, 2]);
        assert_eq!(offsets, vec![0, 3, 8]);
        assert_eq!(arena.len(), 10);
        assert_eq!(arena.nregions(), 3);
        assert_eq!(arena.region(1), (3, 5));
    }

    #[test]
    fn writes_are_visible_to_reads() {
        let (arena, _) = SharedArena::new(&[4, 4]);
        {
            let mut w = arena.write_guard(0);
            w.slice_mut().copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        }
        let r = arena.read_guard(0);
        assert_eq!(r.slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concurrent_reads_are_fine() {
        let (arena, _) = SharedArena::new(&[4]);
        let r1 = arena.read_guard(0);
        let r2 = arena.read_guard(0);
        assert_eq!(r1.slice().len(), 4);
        assert_eq!(r2.slice().len(), 4);
    }

    #[test]
    #[should_panic(expected = "discipline violation")]
    fn write_under_read_is_caught() {
        let (arena, _) = SharedArena::new(&[4]);
        let _r = arena.read_guard(0);
        let _w = arena.write_guard(0);
    }

    #[test]
    #[should_panic(expected = "discipline violation")]
    fn read_under_write_is_caught() {
        let (arena, _) = SharedArena::new(&[4]);
        let _w = arena.write_guard(0);
        let _r = arena.read_guard(0);
    }

    #[test]
    fn distinct_regions_do_not_conflict() {
        let (arena, _) = SharedArena::new(&[4, 4]);
        let _w0 = arena.write_guard(0);
        let _w1 = arena.write_guard(1);
        let (_, len) = arena.region(1);
        assert_eq!(len, 4);
    }

    #[test]
    fn cross_thread_visibility() {
        let (arena, _) = SharedArena::new(&[8]);
        std::thread::scope(|s| {
            let a = Arc::clone(&arena);
            s.spawn(move || {
                let mut w = a.write_guard(0);
                for (i, v) in w.slice_mut().iter_mut().enumerate() {
                    *v = i as f64;
                }
            })
            .join()
            .unwrap();
        });
        let r = arena.read_guard(0);
        assert_eq!(r.slice()[7], 7.0);
    }

    #[test]
    fn empty_arena() {
        let (arena, offsets) = SharedArena::new(&[]);
        assert!(arena.is_empty());
        assert!(offsets.is_empty());
    }
}
