//! The per-rank virtual-clock backend: LogGP-modeled time at 64k ranks.
//!
//! The discrete-event simulator ([`crate::simbackend`]) spawns one OS
//! thread per rank and synchronizes them through a global kernel —
//! faithful, but infeasible past a few thousand ranks. This backend
//! trades transfer *contention* for scale: every rank carries its own
//! independent virtual clock, charges each operation its uncontended
//! [`TransferCost`](srumma_model::TransferCost), and runs **to
//! completion** as a state-machine task on the work-stealing executor —
//! no per-rank OS thread, no cross-rank coupling, so 65 536 ranks are a
//! few seconds of host time.
//!
//! Rank clocks are recombined **BSP-style** at barriers: `barrier()` is
//! non-blocking in virtual time (it only cuts the current clock
//! segment), and [`virtual_run`] aligns segments across ranks — the
//! run's makespan is the sum over segments of the slowest rank's
//! duration, plus a log-depth latency per barrier, exactly the
//! accounting `sim_run` converges to for barrier-separated phases. The
//! price is that *within* a segment, ranks do not contend for wires or
//! memory bandwidth; this is the classic LogGP idealization, and it is
//! what makes the flat-vs-hierarchical byte and makespan crossover
//! measurable at paper-untouchable scales.

use crate::comm::{Comm, GetHandle};
use crate::dist::DistMatrix;
use crate::exec::{exec_run_tasks, RankTask, Step};
use srumma_dense::{dgemm_ws, GemmConfig, GemmWorkspace, MatMut, MatRef, Op};
use srumma_model::{protocol, Machine, Topology, TransferCost};
use srumma_trace::{Counters, RankStats, Recorder, RunStats};
use std::sync::Arc;

/// Per-rank communicator over an independent virtual clock.
pub struct VirtualComm {
    rank: usize,
    nranks: usize,
    topo: Topology,
    machine: Arc<Machine>,
    /// This rank's virtual time (monotonic across segments).
    clock: f64,
    /// Start time of the current inter-barrier segment.
    seg_start: f64,
    /// Closed segment durations (one per barrier passed).
    segments: Vec<f64>,
    /// Completion time of every transfer issued, indexed by handle.
    done_at: Vec<f64>,
    /// Handles not yet waited on (drained by `fence`).
    outstanding: Vec<usize>,
    recorder: Recorder,
    ws: GemmWorkspace,
}

impl VirtualComm {
    /// A communicator for `rank` of `nranks` on `machine` with layout
    /// `topo`.
    pub fn new(rank: usize, nranks: usize, topo: Topology, machine: Arc<Machine>) -> Self {
        assert_eq!(topo.nranks(), nranks, "topology rank count mismatch");
        VirtualComm {
            rank,
            nranks,
            topo,
            machine,
            clock: 0.0,
            seg_start: 0.0,
            segments: Vec::new(),
            done_at: Vec::new(),
            outstanding: Vec::new(),
            recorder: Recorder::disabled(rank),
            ws: GemmWorkspace::new(),
        }
    }

    /// NUMA brick of `rank` (mirrors the simulator's grouping).
    fn membw_group(&self, rank: usize) -> usize {
        rank / self.machine.shm.membw_group_size.max(1)
    }

    /// Charge a nonblocking issue: the initiator-busy part advances the
    /// clock now; the full blocking completion time is remembered for
    /// `wait`/`fence`.
    fn issue(&mut self, cost: TransferCost) -> GetHandle {
        let start = self.clock;
        self.clock += cost.initiator_busy_time();
        let id = self.done_at.len();
        self.done_at.push(start + cost.blocking_time());
        self.outstanding.push(id);
        GetHandle::Virt(id)
    }

    /// Uncontended cost of moving `bytes` between us and cost endpoint
    /// `serve` (a one-sided get; puts differ only in latency).
    fn onesided_cost(&self, serve: usize, bytes: usize, put: bool) -> TransferCost {
        if serve == self.rank {
            protocol::shm_copy(&self.machine, bytes, false)
        } else if self.topo.same_domain(self.rank, serve) {
            let cross = self.membw_group(self.rank) != self.membw_group(serve);
            protocol::shm_copy(&self.machine, bytes, cross)
        } else if put {
            protocol::rma_put(&self.machine, bytes)
        } else {
            protocol::rma_get(&self.machine, bytes)
        }
    }

    /// Classify a transfer by the hierarchy level that served it.
    #[inline]
    fn classify(&mut self, serve: usize, bytes: u64) {
        if serve == self.rank {
            return;
        }
        if self.topo.same_domain(self.rank, serve) {
            self.recorder.count_intragroup(bytes);
        } else {
            self.recorder.count_internode(bytes);
        }
    }

    /// Close the final segment and surrender the clock record.
    fn finish(mut self) -> (Vec<f64>, Counters) {
        self.fence();
        self.segments.push(self.clock - self.seg_start);
        let (_, counters) = self.recorder.take();
        (self.segments, counters)
    }
}

impl Comm for VirtualComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    fn topology(&self) -> Topology {
        self.topo
    }

    fn prefer_direct_access(&self, owner: usize) -> bool {
        self.topo.same_domain(self.rank, owner) && self.machine.shm.cacheable_remote
    }

    fn now(&self) -> f64 {
        self.clock
    }

    fn recorder(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    fn ws_grow_count(&self) -> u64 {
        self.ws.grow_count()
    }

    fn configure_gemm(&mut self, cfg: &GemmConfig) {
        let resolved = GemmWorkspace::configured(*cfg);
        if resolved.config() != self.ws.config() {
            self.ws = resolved;
        }
    }

    /// Non-blocking in virtual time: cuts the current clock segment.
    /// [`virtual_run`] realigns ranks here and charges the log-depth
    /// barrier latency during recombination, so every rank must execute
    /// the same barrier sequence.
    fn barrier(&mut self) {
        self.segments.push(self.clock - self.seg_start);
        self.seg_start = self.clock;
    }

    fn nbget(&mut self, mat: &DistMatrix, owner: usize, buf: &mut Vec<f64>) -> GetHandle {
        let (rows, cols) = mat.copy_block_into(owner, buf);
        let bytes = (rows * cols * 8) as u64;
        self.recorder.count_fetch(bytes);
        let serve = mat.cost_rank(owner);
        self.classify(serve, bytes);
        let cost = self.onesided_cost(serve, bytes as usize, false);
        self.issue(cost)
    }

    fn wait(&mut self, h: GetHandle) {
        match h {
            GetHandle::Ready => {}
            GetHandle::Virt(id) => {
                self.clock = self.clock.max(self.done_at[id]);
                self.outstanding.retain(|&o| o != id);
            }
            GetHandle::Sim(_) => unreachable!("virtual backend issues no simulated transfers"),
        }
    }

    fn nbput(&mut self, mat: &DistMatrix, owner: usize, data: &[f64]) -> GetHandle {
        mat.copy_block_from(owner, data);
        let bytes = mat.block_bytes(owner);
        let serve = mat.cost_rank(owner);
        self.classify(serve, bytes);
        let cost = self.onesided_cost(serve, bytes as usize, true);
        self.issue(cost)
    }

    fn acc(&mut self, mat: &DistMatrix, owner: usize, scale: f64, data: &[f64]) {
        mat.acc_block_from(owner, scale, data);
        let bytes = mat.block_bytes(owner);
        let (rows, cols) = mat.block_dims(owner);
        let serve = mat.cost_rank(owner);
        self.classify(serve, bytes);
        let add_time = (rows * cols) as f64 / self.machine.cpu.peak_flops;
        let cost = self.onesided_cost(serve, bytes as usize, true);
        // Blocking accumulate: full transfer plus the target-side adds.
        self.clock += cost.blocking_time() + add_time;
    }

    fn fence(&mut self) {
        for id in std::mem::take(&mut self.outstanding) {
            self.clock = self.clock.max(self.done_at[id]);
        }
    }

    fn gemm(
        &mut self,
        ta: Op,
        tb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: Option<MatRef<'_>>,
        b: Option<MatRef<'_>>,
        c: Option<MatMut<'_>>,
        direct: bool,
        _label: &str,
    ) {
        let base = self.machine.cpu.gemm_time(m, n, k);
        let factor = if direct {
            self.machine.shm.direct_access_eff.max(1e-3)
        } else {
            1.0
        };
        self.clock += base / factor;
        if let (Some(a), Some(b), Some(c)) = (a, b, c) {
            dgemm_ws(ta, tb, alpha, a, b, 1.0, c, &mut self.ws);
        }
    }

    fn send(&mut self, _dst: usize, _tag: u64, _data: &[f64], _bytes: u64) {
        unimplemented!("the virtual-clock backend models one-sided algorithms only");
    }

    fn recv(&mut self, _src: usize, _tag: u64, _buf: &mut Vec<f64>, _bytes: u64) {
        unimplemented!("the virtual-clock backend models one-sided algorithms only");
    }

    fn sendrecv(
        &mut self,
        _dst: usize,
        _tag: u64,
        _send_data: &[f64],
        _send_bytes: u64,
        _src: usize,
        _recv_buf: &mut Vec<f64>,
        _recv_bytes: u64,
    ) {
        unimplemented!("the virtual-clock backend models one-sided algorithms only");
    }
}

/// Result of a [`virtual_run`].
#[derive(Debug)]
pub struct VirtualRunResult<T> {
    /// Per-rank outputs.
    pub outputs: Vec<T>,
    /// Modeled per-rank and aggregate metrics (virtual seconds);
    /// `stats.exec` carries the executor's scheduling counters.
    pub stats: RunStats,
    /// Host wall-clock seconds the run took — the feasibility metric.
    pub wall_seconds: f64,
}

/// One rank program as a run-to-completion task: `barrier` never blocks
/// on this backend, so the whole body is a single `step`.
struct VirtTask<'env, T, F> {
    rank: usize,
    nranks: usize,
    topo: Topology,
    machine: Arc<Machine>,
    body: &'env F,
    _out: std::marker::PhantomData<fn() -> T>,
}

impl<'env, T, F> RankTask for VirtTask<'env, T, F>
where
    T: Send,
    F: Fn(&mut VirtualComm) -> T + Sync,
{
    type Out = (T, Vec<f64>, Counters);

    fn step(&mut self) -> Step<Self::Out> {
        let mut comm =
            VirtualComm::new(self.rank, self.nranks, self.topo, Arc::clone(&self.machine));
        let out = (self.body)(&mut comm);
        let (segments, counters) = comm.finish();
        Step::Done((out, segments, counters))
    }
}

/// Run `body` once per rank with independent virtual clocks, multiplexed
/// onto `workers` executor workers, and recombine the clocks BSP-style.
/// The topology comes from `machine.topology(nranks)`, matching
/// [`sim_run`](crate::simbackend::sim_run).
pub fn virtual_run<T, F>(
    machine: &Machine,
    nranks: usize,
    workers: usize,
    body: F,
) -> VirtualRunResult<T>
where
    T: Send,
    F: Fn(&mut VirtualComm) -> T + Sync,
{
    assert!(nranks > 0);
    let topo = machine.topology(nranks);
    let machine = Arc::new(machine.clone());
    let res = exec_run_tasks(nranks, workers, false, |comm| {
        Box::new(VirtTask {
            rank: comm.rank(),
            nranks,
            topo,
            machine: Arc::clone(&machine),
            body: &body,
            _out: std::marker::PhantomData,
        })
    });
    let wall_seconds = res.wall_seconds;
    let exec = res.stats.exec;

    let mut outputs = Vec::with_capacity(nranks);
    let mut segs: Vec<Vec<f64>> = Vec::with_capacity(nranks);
    let mut counters = Vec::with_capacity(nranks);
    for (out, s, c) in res.outputs {
        outputs.push(out);
        segs.push(s);
        counters.push(c);
    }
    let nseg = segs[0].len();
    for (r, s) in segs.iter().enumerate() {
        assert_eq!(
            s.len(),
            nseg,
            "rank {r} executed a different barrier sequence"
        );
    }
    // Same alignment latency the discrete-event kernel charges: a
    // log-depth combining tree per barrier. The final segment boundary
    // is program exit, not a barrier.
    let nbarriers = nseg.saturating_sub(1);
    let depth = (nranks.max(2) as f64).log2().ceil();
    let barrier_latency = depth
        * if topo.nnodes() == 1 {
            machine.shm.latency * 4.0
        } else {
            machine.net.mpi_latency
        };
    let sync_time = nbarriers as f64 * barrier_latency;
    let mut makespan = sync_time;
    for i in 0..nseg {
        makespan += segs.iter().map(|s| s[i]).fold(0.0, f64::max);
    }
    let mut ranks = vec![RankStats::default(); nranks];
    let mut final_times = vec![0.0f64; nranks];
    for r in 0..nranks {
        let ctr = &counters[r];
        let rs = &mut ranks[r];
        rs.bytes_network = ctr.bytes_internode;
        rs.bytes_shm = ctr.bytes_fetched.saturating_sub(ctr.bytes_internode);
        rs.transfers = ctr.blocks_fetched;
        rs.absorb_counters(ctr);
        final_times[r] = segs[r].iter().sum::<f64>() + sync_time;
    }
    let stats = RunStats {
        ranks,
        final_times,
        makespan,
        exec,
    };
    VirtualRunResult {
        outputs,
        stats,
        wall_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srumma_model::ProcGrid;

    #[test]
    fn clocks_advance_and_segments_align() {
        let machine = Machine::linux_myrinet();
        let res = virtual_run(&machine, 4, 2, |c| {
            c.gemm(Op::N, Op::N, 64, 64, 64, 1.0, None, None, None, false, "t");
            c.barrier();
            if c.rank() == 0 {
                // Rank 0 computes more in segment 2: it alone should
                // stretch the second segment's maximum.
                c.gemm(Op::N, Op::N, 64, 64, 64, 1.0, None, None, None, false, "t");
            }
            c.rank()
        });
        assert_eq!(res.outputs, vec![0, 1, 2, 3]);
        let t1 = machine.cpu.gemm_time(64, 64, 64);
        assert!(
            res.stats.makespan >= 2.0 * t1,
            "both segment maxima must contribute"
        );
        assert!(res.stats.makespan < 2.0 * t1 + 1e-3);
    }

    #[test]
    fn nonblocking_get_overlaps_and_fence_completes() {
        let machine = Machine::linux_myrinet(); // 2 ranks/node: rank 2 is off-node from rank 0
        let grid = ProcGrid::new(2, 2);
        let mat = DistMatrix::create_virtual(grid, 256, 256);
        let res = virtual_run(&machine, 4, 2, |c| {
            let mut buf = Vec::new();
            let peer = (c.rank() + 2) % 4; // always off-node under w=2
            let h = c.nbget(&mat, peer, &mut buf);
            let at_issue = c.now();
            c.wait(h);
            (at_issue, c.now())
        });
        for (issue, done) in &res.outputs {
            assert!(done > issue, "waiting must advance past the issue time");
        }
        // Off-node fetches are internode bytes, and they land in
        // bytes_network.
        assert!(res.stats.total_internode_bytes() > 0);
        assert_eq!(
            res.stats.total_internode_bytes(),
            res.stats.total_network_bytes()
        );
    }

    #[test]
    fn scales_to_thousands_of_ranks() {
        let machine = Machine::linux_myrinet();
        let res = virtual_run(&machine, 4096, 8, |c| {
            c.barrier();
            c.rank()
        });
        assert_eq!(res.outputs.len(), 4096);
        assert!(res.stats.makespan > 0.0, "barrier latency alone is charged");
    }
}
