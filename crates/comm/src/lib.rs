//! # srumma-comm — the communication substrate (ARMCI & MPI stand-ins)
//!
//! The paper's implementation sits on ARMCI: a collective shared-memory
//! allocator (`ARMCI_Malloc`), one-sided nonblocking get/put, and a
//! cluster-locality query that tells each process which peers it can
//! reach through plain load/store. This crate rebuilds that layer — and
//! the MPI-style two-sided operations the baselines (Cannon,
//! SUMMA/pdgemm) need — over two interchangeable backends:
//!
//! * [`SimComm`](simbackend::SimComm) — runs under the virtual-time
//!   simulator (`srumma-sim`) with costs from `srumma-model`. Data
//!   movement is *real* when matrices carry real backing (tests verify
//!   numerics end-to-end) and elided for paper-scale modeled runs.
//! * [`ThreadComm`](threadbackend::ThreadComm) — real host threads in
//!   one shared-memory domain, real memcpys, wall-clock timing: the
//!   "SGI Altix flavor" made concrete on today's hardware.
//!
//! Algorithms in `srumma-core` are generic over the [`Comm`] trait, so
//! the *same* SRUMMA/Cannon/SUMMA code runs on both backends.
//!
//! ## Module map
//!
//! * [`arena`] — the shared allocation (`ArmciHeap` stand-in) with a
//!   debug-build access checker.
//! * [`dist`] — [`dist::DistMatrix`]: 2-D block-distributed matrices
//!   over a process grid, with optional real backing.
//! * [`comm`] — the [`Comm`] trait and block handle types.
//! * [`simbackend`] / [`threadbackend`] / [`exec`] — the three
//!   implementations (virtual time, thread-per-rank, work-stealing
//!   executor).
//! * [`deque`] — the Chase–Lev work-stealing deque under the executor.
//! * [`mpi`] — two-sided collectives (broadcast, shift, allgather) built
//!   on `Comm::send`/`Comm::recv`, used by the baselines.
//! * [`fault`] — seeded fault injection ([`FaultPlan`]) and the
//!   [`ChaosComm`] decorator for wall-clock backends.

pub mod arena;
pub mod comm;
pub mod deque;
pub mod dist;
pub mod exec;
pub mod fault;
pub mod mpi;
pub mod simbackend;
pub mod subcomm;
pub mod threadbackend;
pub mod virt;

pub use arena::SharedArena;
pub use comm::{BlockMut, BlockRef, Comm, GetHandle};
pub use dist::{CostMap, DistMatrix};
pub use exec::{
    exec_run, exec_run_tasks, exec_run_tasks_with_topology, exec_run_traced,
    exec_run_with_topology, resolve_workers, ExecComm, ExecRunResult, RankTask, Step,
};
pub use fault::{ChaosComm, FaultPlan, RankDeath};
pub use simbackend::{sim_run, ComputeMode, SimComm, SimOptions};
pub use subcomm::SubComm;
pub use threadbackend::{
    thread_run, thread_run_traced, thread_run_with_topology, ThreadComm, ThreadRunResult,
};
pub use virt::{virtual_run, VirtualComm, VirtualRunResult};
