//! A fixed-capacity Chase–Lev work-stealing deque over task ids.
//!
//! Each executor worker owns one deque: the owner pushes and pops new
//! work at the *bottom* (LIFO, so a rank that yielded is resumed hot in
//! cache), thieves take the oldest work from the *top* with a CAS. The
//! memory-ordering discipline follows Lê/Pop/Cousot/Nardelli, "Correct
//! and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13).
//!
//! Two deliberate simplifications versus the general published
//! structure, both possible because the executor knows its task
//! population up front:
//!
//! * **No growth.** Capacity is fixed at construction to the next power
//!   of two ≥ the total task count. A task id is enqueued in at most
//!   one queue at a time, so the deque can never hold more than every
//!   task at once — `push` on a full deque is therefore a logic error
//!   and panics rather than reallocating (reallocation is where the
//!   hard memory-reclamation problems of Chase–Lev live).
//! * **Atomic cells.** Slots are `AtomicUsize`, so a racing steal reads
//!   a stale *value* at worst (rejected by its CAS), never exhibits a
//!   data race — the whole structure stays in safe Rust.

use std::sync::atomic::{fence, AtomicIsize, AtomicUsize, Ordering};

/// Single-owner, multi-thief deque of `usize` task ids.
pub struct WorkDeque {
    /// Next steal position (oldest element).
    top: AtomicIsize,
    /// Next push position (one past the newest element).
    bottom: AtomicIsize,
    /// Power-of-two ring of task ids.
    buf: Box<[AtomicUsize]>,
    mask: usize,
}

impl WorkDeque {
    /// A deque able to hold `capacity` ids (rounded up to a power of
    /// two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        WorkDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
        }
    }

    /// Approximate occupancy (exact when called by the owner with no
    /// concurrent steals).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque currently looks empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: push `task` at the bottom.
    pub fn push(&self, task: usize) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        assert!(
            (b - t) as usize <= self.mask,
            "work deque overflow: capacity {} sized below the task population",
            self.mask + 1
        );
        self.buf[(b as usize) & self.mask].store(task, Ordering::Relaxed);
        // Publish the slot before the new bottom becomes visible to
        // thieves.
        fence(Ordering::Release);
        self.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Owner-only: pop the most recently pushed task, if any.
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // The store above must be ordered before the top load: the
        // owner claims the slot before looking at what thieves did.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let task = self.buf[(b as usize) & self.mask].load(Ordering::Relaxed);
        if t == b {
            // Last element: race the thieves for it.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(task);
        }
        Some(task)
    }

    /// Any thread: steal the oldest task, if any. Returns `None` both
    /// when empty and when the CAS lost a race (callers retry on other
    /// victims anyway).
    pub fn steal(&self) -> Option<usize> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        let task = self.buf[(t as usize) & self.mask].load(Ordering::Relaxed);
        self.top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
            .then_some(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn lifo_for_owner_fifo_for_thieves() {
        let d = WorkDeque::new(8);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.steal(), Some(1), "thief takes the oldest");
        assert_eq!(d.pop(), Some(3), "owner takes the newest");
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn wraps_around_the_ring() {
        let d = WorkDeque::new(4);
        for round in 0..10 {
            d.push(round * 2);
            d.push(round * 2 + 1);
            assert_eq!(d.steal(), Some(round * 2));
            assert_eq!(d.pop(), Some(round * 2 + 1));
        }
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "work deque overflow")]
    fn overflow_is_a_panic_not_a_corruption() {
        let d = WorkDeque::new(2);
        for i in 0..3 {
            d.push(i);
        }
    }

    /// Hammer one owner (push/pop) against several thieves: every
    /// pushed id must be consumed exactly once, none lost, none
    /// duplicated.
    #[test]
    fn concurrent_steals_neither_lose_nor_duplicate() {
        const N: usize = 20_000;
        const THIEVES: usize = 3;
        let d = WorkDeque::new(N);
        let taken: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                s.spawn(|| {
                    let mut got = Vec::new();
                    // Spin until the owner signals completion by
                    // pushing the sentinel N (never a real id).
                    loop {
                        match d.steal() {
                            Some(x) if x == N => break,
                            Some(x) => got.push(x),
                            None => std::hint::spin_loop(),
                        }
                    }
                    d.push(N); // re-arm the sentinel for the next thief
                    taken.lock().unwrap().extend(got);
                });
            }
            let mut got = Vec::new();
            for i in 0..N {
                d.push(i);
                if i % 3 == 0 {
                    if let Some(x) = d.pop() {
                        got.push(x);
                    }
                }
            }
            while let Some(x) = d.pop() {
                got.push(x);
            }
            d.push(N); // sentinel: stops one thief, which re-arms it
            taken.lock().unwrap().extend(got);
        });
        let all = taken.into_inner().unwrap();
        let unique: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(all.len(), N, "every id consumed exactly once");
        assert_eq!(unique.len(), N, "no id duplicated");
    }
}
