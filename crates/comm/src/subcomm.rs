//! Rank-window view over any backend: the replication layers'
//! communicator.
//!
//! c-fold replication partitions the `P` global ranks into `c`
//! contiguous *layers* of `P/c` ranks; each layer runs the ordinary
//! SRUMMA schedule over its own k-slice as if it were the whole
//! machine. `SubComm` makes that literal: it renumbers this rank into
//! the layer (`global − base`), reports the layer's size and topology,
//! and forwards every operation to the wrapped backend. Layer-local
//! distributed matrices carry [`CostMap::Base`](crate::dist::CostMap)
//! so the backend still costs and classifies transfers against the
//! *global* rank space.
//!
//! **Barriers are global.** Every rank program in a replicated run is
//! straight-line symmetric code executing the identical barrier
//! sequence, so a layer barrier simply forwards to the machine-wide
//! one — which is also what keeps the virtual backend's BSP segment
//! recombination aligned across layers.

use crate::comm::{Comm, GetHandle};
use crate::dist::DistMatrix;
use srumma_dense::{GemmConfig, MatMut, MatRef, Op};
use srumma_model::Topology;
use srumma_trace::Recorder;

/// A window of `n` consecutive global ranks `[base, base + n)`
/// presented as a self-contained machine of `n` ranks.
pub struct SubComm<'a, C: Comm> {
    inner: &'a mut C,
    base: usize,
    n: usize,
    topo: Topology,
}

impl<'a, C: Comm> SubComm<'a, C> {
    /// Wrap `inner` (whose rank must lie in `[base, base + n)`) as rank
    /// `inner.rank() − base` of an `n`-rank machine with layout `topo`.
    pub fn new(inner: &'a mut C, base: usize, n: usize, topo: Topology) -> Self {
        assert_eq!(topo.nranks(), n, "sub-topology rank count mismatch");
        let me = inner.rank();
        assert!(
            me >= base && me < base + n,
            "rank {me} outside window [{base}, {})",
            base + n
        );
        SubComm {
            inner,
            base,
            n,
            topo,
        }
    }

    /// The window's first global rank.
    pub fn base(&self) -> usize {
        self.base
    }
}

impl<C: Comm> Comm for SubComm<'_, C> {
    fn rank(&self) -> usize {
        self.inner.rank() - self.base
    }

    fn nranks(&self) -> usize {
        self.n
    }

    fn topology(&self) -> Topology {
        self.topo
    }

    fn prefer_direct_access(&self, owner: usize) -> bool {
        self.inner.prefer_direct_access(self.base + owner)
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn recorder(&mut self) -> &mut Recorder {
        self.inner.recorder()
    }

    /// Machine-wide barrier (see the module docs): every layer arrives.
    fn barrier(&mut self) {
        self.inner.barrier();
    }

    fn ws_grow_count(&self) -> u64 {
        self.inner.ws_grow_count()
    }

    fn configure_gemm(&mut self, cfg: &GemmConfig) {
        self.inner.configure_gemm(cfg);
    }

    // One-sided operations forward untranslated: `owner` indexes a slot
    // of `mat`, whose `CostMap` already maps slots to global ranks.
    fn nbget(&mut self, mat: &DistMatrix, owner: usize, buf: &mut Vec<f64>) -> GetHandle {
        self.inner.nbget(mat, owner, buf)
    }

    fn wait(&mut self, h: GetHandle) {
        self.inner.wait(h);
    }

    fn nbput(&mut self, mat: &DistMatrix, owner: usize, data: &[f64]) -> GetHandle {
        self.inner.nbput(mat, owner, data)
    }

    fn acc(&mut self, mat: &DistMatrix, owner: usize, scale: f64, data: &[f64]) {
        self.inner.acc(mat, owner, scale, data);
    }

    fn fence(&mut self) {
        self.inner.fence();
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm(
        &mut self,
        ta: Op,
        tb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: Option<MatRef<'_>>,
        b: Option<MatRef<'_>>,
        c: Option<MatMut<'_>>,
        direct: bool,
        label: &str,
    ) {
        self.inner
            .gemm(ta, tb, m, n, k, alpha, a, b, c, direct, label);
    }

    fn send(&mut self, dst: usize, tag: u64, data: &[f64], bytes: u64) {
        self.inner.send(self.base + dst, tag, data, bytes);
    }

    fn recv(&mut self, src: usize, tag: u64, buf: &mut Vec<f64>, bytes: u64) {
        self.inner.recv(self.base + src, tag, buf, bytes);
    }

    fn sendrecv(
        &mut self,
        dst: usize,
        tag: u64,
        send_data: &[f64],
        send_bytes: u64,
        src: usize,
        recv_buf: &mut Vec<f64>,
        recv_bytes: u64,
    ) {
        self.inner.sendrecv(
            self.base + dst,
            tag,
            send_data,
            send_bytes,
            self.base + src,
            recv_buf,
            recv_bytes,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threadbackend::thread_run;

    #[test]
    fn window_renumbers_ranks_and_translates_messages() {
        let res = thread_run(4, |c| {
            let base = if c.rank() < 2 { 0 } else { 2 };
            let topo = Topology::single_domain(2);
            let mut sub = SubComm::new(c, base, 2, topo);
            assert_eq!(sub.nranks(), 2);
            let me = sub.rank();
            let peer = 1 - me;
            let mut buf = Vec::new();
            // Exchange within the window: layer-local ranks 0↔1.
            sub.sendrecv(peer, 7, &[me as f64], 8, peer, &mut buf, 8);
            (me, buf[0] as usize)
        });
        assert_eq!(res.outputs, vec![(0, 1), (1, 0), (0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "outside window")]
    fn rank_outside_window_is_rejected() {
        thread_run(4, |c| {
            let _ = SubComm::new(c, 0, 2, Topology::single_domain(2));
        });
    }
}
