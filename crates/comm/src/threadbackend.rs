//! The real-threads backend: `Comm` on actual host shared memory.
//!
//! This is the paper's SGI Altix configuration made concrete on today's
//! hardware: every rank is an OS thread in a single cacheable
//! shared-memory domain, a "get" is a real `memcpy`, direct access
//! passes real slices straight into the serial kernel, and time is the
//! wall clock. The quickstart example and the Criterion benches use it
//! to demonstrate genuine parallel speedup from the same algorithm code
//! that runs under the simulator.

use crate::comm::{Comm, GetHandle};
use crate::dist::DistMatrix;
use srumma_dense::{dgemm_ws, GemmConfig, GemmWorkspace, MatMut, MatRef, Op};
use srumma_model::Topology;
use srumma_trace::{Counters, Recorder, RunStats, TraceEvent, TraceKind};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

type Packet = (u64, Vec<f64>);

/// A sense-reversing barrier that can be *poisoned*: when a rank
/// panics, `thread_run` poisons the barrier so every waiter unwinds
/// instead of hanging forever (std's `Barrier` cannot be interrupted).
struct PoisonBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Default)]
struct BarrierState {
    count: usize,
    generation: u64,
    poisoned: bool,
}

impl PoisonBarrier {
    fn new(n: usize) -> Self {
        PoisonBarrier {
            n,
            state: Mutex::new(BarrierState::default()),
            cv: Condvar::new(),
        }
    }

    /// Lock the barrier state, tolerating mutex poisoning: a panicking
    /// rank must still be able to poison the barrier, and survivors
    /// must be able to observe the flag and unwind.
    fn lock(&self) -> MutexGuard<'_, BarrierState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait(&self) {
        let mut st = self.lock();
        assert!(!st.poisoned, "barrier poisoned: another rank panicked");
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation += 1;
            self.cv.notify_all();
            return;
        }
        let gen = st.generation;
        while st.generation == gen && !st.poisoned {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        assert!(!st.poisoned, "barrier poisoned: another rank panicked");
    }

    fn poison(&self) {
        let mut st = self.lock();
        st.poisoned = true;
        self.cv.notify_all();
    }
}

/// Per-rank communicator over real threads.
pub struct ThreadComm {
    rank: usize,
    nranks: usize,
    barrier: Arc<PoisonBarrier>,
    /// `senders[d]` sends to rank `d` (our outgoing edge).
    senders: Vec<Sender<Packet>>,
    /// `receivers[s]` receives what rank `s` sent us.
    receivers: Vec<Receiver<Packet>>,
    t0: Instant,
    /// Emulated node layout. Defaults to one cacheable domain (the
    /// Altix flavor); [`thread_run_with_topology`] overrides it so
    /// hierarchical schedules exercise real staging `memcpy`s on a
    /// pretend cluster.
    topo: Topology,
    /// Wall-clock trace recorder (same implementation the simulator
    /// backend uses, recording `Instant`-derived seconds instead of
    /// virtual time).
    recorder: Recorder,
    /// Per-rank gemm packing workspace, reused across every `gemm` call
    /// this rank issues (zero steady-state allocations in the task loop).
    ws: GemmWorkspace,
}

impl ThreadComm {
    /// Start of a recorded interval: a clock read when tracing, free
    /// otherwise (the disabled-recorder overhead budget is one branch
    /// per instrumentation point).
    #[inline]
    fn span_start(&self) -> f64 {
        if self.recorder.is_enabled() {
            self.t0.elapsed().as_secs_f64()
        } else {
            0.0
        }
    }

    /// Close an interval opened by [`Self::span_start`].
    #[inline]
    fn span_end<F: FnOnce() -> String>(&mut self, kind: TraceKind, t0: f64, bytes: u64, label: F) {
        if self.recorder.is_enabled() {
            let t1 = self.t0.elapsed().as_secs_f64();
            self.recorder.span(kind, t0, t1, bytes, label);
        }
    }

    /// Classify a transfer against the emulated topology: which level of
    /// the (pretend) memory hierarchy served it.
    #[inline]
    fn classify(&mut self, serve: usize, bytes: u64) {
        if serve == self.rank {
            return;
        }
        if self.topo.same_domain(self.rank, serve) {
            self.recorder.count_intragroup(bytes);
        } else {
            self.recorder.count_internode(bytes);
        }
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn nranks(&self) -> usize {
        self.nranks
    }

    fn topology(&self) -> Topology {
        self.topo
    }

    fn prefer_direct_access(&self, owner: usize) -> bool {
        // Host shared memory is cacheable: the Altix flavor. Under an
        // emulated cluster topology, off-node blocks must be fetched so
        // hierarchical staging actually moves bytes.
        self.topo.same_domain(self.rank, owner)
    }

    fn now(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }

    fn recorder(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    fn ws_grow_count(&self) -> u64 {
        self.ws.grow_count()
    }

    fn configure_gemm(&mut self, cfg: &GemmConfig) {
        // Resolve `None` fields exactly like construction would, then
        // swap workspaces only when the effective config changed —
        // idempotent reconfiguration keeps grow-at-most-once intact.
        let resolved = GemmWorkspace::configured(*cfg);
        if resolved.config() != self.ws.config() {
            self.ws = resolved;
        }
    }

    fn barrier(&mut self) {
        let t0 = self.span_start();
        self.barrier.wait();
        self.span_end(TraceKind::Barrier, t0, 0, String::new);
    }

    fn nbget(&mut self, mat: &DistMatrix, owner: usize, buf: &mut Vec<f64>) -> GetHandle {
        let t0 = self.span_start();
        let (rows, cols) = mat.copy_block_into(owner, buf);
        let bytes = (rows * cols * 8) as u64;
        self.recorder.count_fetch(bytes);
        self.classify(mat.cost_rank(owner), bytes);
        self.span_end(TraceKind::Transfer, t0, bytes, || format!("get<-{owner}"));
        GetHandle::Ready
    }

    fn wait(&mut self, h: GetHandle) {
        match h {
            GetHandle::Ready => {}
            GetHandle::Sim(_) | GetHandle::Virt(_) => {
                unreachable!("thread backend issues no simulated transfers")
            }
        }
    }

    fn nbput(&mut self, mat: &DistMatrix, owner: usize, data: &[f64]) -> GetHandle {
        let t0 = self.span_start();
        mat.copy_block_from(owner, data);
        let bytes = mat.block_bytes(owner);
        self.classify(mat.cost_rank(owner), bytes);
        self.span_end(TraceKind::Transfer, t0, bytes, || format!("put->{owner}"));
        GetHandle::Ready
    }

    fn acc(&mut self, mat: &DistMatrix, owner: usize, scale: f64, data: &[f64]) {
        let t0 = self.span_start();
        mat.acc_block_from(owner, scale, data);
        let bytes = mat.block_bytes(owner);
        self.classify(mat.cost_rank(owner), bytes);
        self.span_end(TraceKind::Transfer, t0, bytes, || format!("acc->{owner}"));
    }

    fn fence(&mut self) {
        // Data movement is eager on the thread backend: already done.
    }

    fn gemm(
        &mut self,
        ta: Op,
        tb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: Option<MatRef<'_>>,
        b: Option<MatRef<'_>>,
        c: Option<MatMut<'_>>,
        _direct: bool,
        label: &str,
    ) {
        if m == 0 || n == 0 || k == 0 {
            return; // empty block: nothing to do (and no data exists)
        }
        let (Some(a), Some(b), Some(c)) = (a, b, c) else {
            panic!("thread backend requires real-backed matrices ({m}x{n}x{k} block had none)");
        };
        let t0 = self.span_start();
        dgemm_ws(ta, tb, alpha, a, b, 1.0, c, &mut self.ws);
        self.span_end(TraceKind::Compute, t0, 0, || label.to_string());
    }

    fn send(&mut self, dst: usize, tag: u64, data: &[f64], _bytes: u64) {
        self.senders[dst]
            .send((tag, data.to_vec()))
            .expect("receiver hung up");
    }

    fn recv(&mut self, src: usize, tag: u64, buf: &mut Vec<f64>, _bytes: u64) {
        let t0 = self.span_start();
        let (got_tag, payload) = self.receivers[src].recv().expect("sender hung up");
        assert_eq!(
            got_tag, tag,
            "tag mismatch receiving from {src}: expected {tag}, got {got_tag}"
        );
        *buf = payload;
        self.span_end(TraceKind::Wait, t0, 0, || format!("recv<-{src}"));
    }

    fn sendrecv(
        &mut self,
        dst: usize,
        tag: u64,
        send_data: &[f64],
        send_bytes: u64,
        src: usize,
        recv_buf: &mut Vec<f64>,
        recv_bytes: u64,
    ) {
        // Channels are buffered: send first, then receive — no deadlock.
        self.send(dst, tag, send_data, send_bytes);
        self.recv(src, tag, recv_buf, recv_bytes);
    }
}

/// Result of a [`thread_run`].
#[derive(Debug)]
pub struct ThreadRunResult<T> {
    /// Per-rank closure outputs.
    pub outputs: Vec<T>,
    /// Wall-clock duration of the parallel section (seconds).
    pub wall_seconds: f64,
    /// Recorded trace events (empty unless run via
    /// [`thread_run_traced`]), merged across ranks and sorted by start
    /// time.
    pub trace: Vec<TraceEvent>,
    /// Derived per-rank and aggregate metrics. Span-derived fields are
    /// zero for untraced runs; the fetch/direct/task counters are
    /// always real.
    pub stats: RunStats,
}

/// Run `body` once per rank on real threads sharing the host's memory.
/// Tracing is off: instrumentation costs one untaken branch per point.
pub fn thread_run<T, F>(nranks: usize, body: F) -> ThreadRunResult<T>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Sync,
{
    thread_run_inner(nranks, false, None, body)
}

/// Like [`thread_run`], but every rank records wall-clock trace events
/// (barriers, gets/puts, kernel calls, and whatever task spans the
/// algorithm layer adds through [`Comm::recorder`]).
pub fn thread_run_traced<T, F>(nranks: usize, body: F) -> ThreadRunResult<T>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Sync,
{
    thread_run_inner(nranks, true, None, body)
}

/// Like [`thread_run`], but every rank sees `topo` instead of one flat
/// shared-memory domain. Blocks owned off-(pretend-)node stop being
/// directly accessible, so hierarchical schedules do real staging
/// copies — on actual host memory, with the wall clock running.
pub fn thread_run_with_topology<T, F>(nranks: usize, topo: Topology, body: F) -> ThreadRunResult<T>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Sync,
{
    assert_eq!(topo.nranks(), nranks, "topology rank count mismatch");
    thread_run_inner(nranks, false, Some(topo), body)
}

fn thread_run_inner<T, F>(
    nranks: usize,
    trace: bool,
    topo: Option<Topology>,
    body: F,
) -> ThreadRunResult<T>
where
    T: Send,
    F: Fn(&mut ThreadComm) -> T + Sync,
{
    assert!(nranks > 0);
    let topo = topo.unwrap_or_else(|| Topology::single_domain(nranks));
    let barrier = Arc::new(PoisonBarrier::new(nranks));
    // Channel matrix: edge (s, d) moves messages s → d.
    let mut txs: Vec<Vec<Option<Sender<Packet>>>> = vec![];
    let mut rxs: Vec<Vec<Option<Receiver<Packet>>>> = (0..nranks).map(|_| vec![]).collect();
    for _s in 0..nranks {
        let mut row = vec![];
        for rx_slot in rxs.iter_mut() {
            let (tx, rx) = channel();
            row.push(Some(tx));
            rx_slot.push(Some(rx));
        }
        txs.push(row);
    }

    let t0 = Instant::now();
    let mut outputs: Vec<Option<(T, Vec<TraceEvent>, Counters)>> =
        (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (rank, ((slot, tx_row), rx_col)) in outputs
            .iter_mut()
            .zip(txs.iter_mut())
            .zip(rxs.iter_mut())
            .enumerate()
        {
            let barrier = Arc::clone(&barrier);
            let body = &body;
            let senders: Vec<Sender<Packet>> =
                tx_row.iter_mut().map(|t| t.take().unwrap()).collect();
            let receivers: Vec<Receiver<Packet>> =
                rx_col.iter_mut().map(|r| r.take().unwrap()).collect();
            handles.push(scope.spawn(move || {
                let mut comm = ThreadComm {
                    rank,
                    nranks,
                    barrier: Arc::clone(&barrier),
                    senders,
                    receivers,
                    t0,
                    topo,
                    recorder: Recorder::new(rank, trace),
                    ws: GemmWorkspace::new(),
                };
                // A panicking rank must poison the barrier (and drop
                // its channel endpoints), or every other rank hangs in
                // a collective that can never complete.
                let result =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut comm)));
                match result {
                    Ok(v) => {
                        let (events, counters) = comm.recorder.take();
                        *slot = Some((v, events, counters));
                        None
                    }
                    Err(payload) => {
                        barrier.poison();
                        Some(payload)
                    }
                }
            }));
        }
        let mut first_panic = None;
        for h in handles {
            match h.join() {
                Ok(Some(payload)) => {
                    // Prefer the original (body) panic over secondary
                    // poison panics from other ranks.
                    first_panic = Some(payload);
                    break;
                }
                Ok(None) => {}
                Err(payload) => {
                    first_panic.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });
    let wall_seconds = t0.elapsed().as_secs_f64();
    let mut plain = Vec::with_capacity(nranks);
    let mut trace_events = Vec::new();
    let mut counters = Vec::with_capacity(nranks);
    for o in outputs {
        let (out, events, ctr) = o.unwrap();
        plain.push(out);
        trace_events.extend(events);
        counters.push(ctr);
    }
    trace_events.sort_by(|a, b| a.t0.total_cmp(&b.t0).then(a.rank.cmp(&b.rank)));
    let mut stats = RunStats::from_events(nranks, &trace_events);
    for (rank, ctr) in counters.iter().enumerate() {
        // Span-derived fields came from `from_events`; fold in the
        // always-on counters (fetched bytes live in bytes_shm already
        // via Transfer spans only when traced, so account them here
        // from the counter to keep untraced runs truthful).
        let rs = &mut stats.ranks[rank];
        rs.bytes_shm = ctr.bytes_fetched;
        rs.transfers = ctr.blocks_fetched;
        rs.absorb_counters(ctr);
    }
    if stats.makespan == 0.0 {
        stats.makespan = wall_seconds;
    }
    ThreadRunResult {
        outputs: plain,
        wall_seconds,
        trace: trace_events,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srumma_dense::Matrix;
    use srumma_model::ProcGrid;

    #[test]
    fn ranks_run_in_parallel_and_return() {
        let res = thread_run(4, |c| c.rank() * 10);
        assert_eq!(res.outputs, vec![0, 10, 20, 30]);
    }

    #[test]
    fn get_copies_real_blocks() {
        let grid = ProcGrid::new(2, 2);
        let mat = DistMatrix::create(grid, 8, 8);
        let global = Matrix::random(8, 8, 3);
        mat.scatter(&global);
        let res = thread_run(4, |c| {
            let mut buf = Vec::new();
            let peer = (c.rank() + 1) % 4;
            c.get(&mat, peer, &mut buf);
            buf.iter().sum::<f64>()
        });
        for (r, got) in res.outputs.iter().enumerate() {
            let peer = (r + 1) % 4;
            let expect: f64 = mat.read_block(peer).mat().unwrap().data()[..16]
                .iter()
                .sum();
            assert!((got - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn send_recv_and_ring_shift() {
        let res = thread_run(4, |c| {
            let n = c.nranks();
            let right = (c.rank() + 1) % n;
            let left = (c.rank() + n - 1) % n;
            let mut buf = Vec::new();
            c.sendrecv(right, 1, &[c.rank() as f64], 8, left, &mut buf, 8);
            buf[0] as usize
        });
        assert_eq!(res.outputs, vec![3, 0, 1, 2]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        thread_run(8, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every increment must be visible.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let res = thread_run(1, |c| {
            let a = Matrix::identity(4);
            let b = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
            let mut cm = Matrix::from_fn(4, 4, |_, _| 1.0);
            c.gemm(
                Op::N,
                Op::N,
                4,
                4,
                4,
                1.0,
                Some(a.as_ref()),
                Some(b.as_ref()),
                Some(cm.as_mut()),
                true,
                "t",
            );
            cm
        });
        let got = &res.outputs[0];
        assert_eq!(got[(2, 3)], 1.0 + 5.0);
    }

    #[test]
    #[should_panic(expected = "tag mismatch")]
    fn tag_mismatch_is_detected() {
        thread_run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 5, &[1.0], 8);
            } else {
                let mut buf = Vec::new();
                c.recv(0, 6, &mut buf, 8);
            }
        });
    }
}
