//! The virtual-time backend: `Comm` over `srumma-sim` + `srumma-model`.
//!
//! Whether a run moves real data is decided by the matrices
//! ([`crate::dist::DistMatrix`] real vs virtual backing), not by the
//! backend: timing is charged identically either way, so small
//! real-backed runs *verify numerics* while paper-scale virtual runs
//! *measure the model* — with the same algorithm code.

use crate::comm::{Comm, GetHandle};
use crate::dist::DistMatrix;
use crate::fault::FaultPlan;
use srumma_dense::{dgemm_ws, GemmConfig, GemmWorkspace, MatMut, MatRef, Op};
use srumma_model::network::Path;
use srumma_model::{protocol, Machine, Topology, TransferCost};
use srumma_sim::{run_sim, SimConfig, SimProc, SimResult, TransferSpec};
use srumma_trace::Recorder;

/// Options for a simulated run.
#[derive(Clone, Debug)]
pub struct SimOptions {
    /// Machine profile (costs + topology rule).
    pub machine: Machine,
    /// Number of ranks to launch.
    pub nranks: usize,
    /// Record a trace timeline.
    pub trace: bool,
    /// Injected faults, applied in **virtual time** (see
    /// [`crate::fault`]): a straggler's compute charges and the
    /// two-sided messages it touches scale by its factor, spiked gets
    /// gain modeled latency. Deaths are rejected here — fail-stop is an
    /// executor-scheduling event the simulator does not model.
    pub fault: FaultPlan,
}

impl SimOptions {
    /// Run `nranks` ranks of `machine`, no tracing.
    pub fn new(machine: Machine, nranks: usize) -> Self {
        SimOptions {
            machine,
            nranks,
            trace: false,
            fault: FaultPlan::healthy(),
        }
    }

    /// Run `nranks` ranks of `machine` with event tracing on.
    pub fn traced(machine: Machine, nranks: usize) -> Self {
        SimOptions {
            machine,
            nranks,
            trace: true,
            fault: FaultPlan::healthy(),
        }
    }

    /// Apply a fault plan (stragglers + get spikes) in virtual time.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        assert!(
            plan.death.is_none(),
            "the sim backend applies stragglers and spikes only; rank death \
             needs the executor's re-execution machinery"
        );
        plan.validate(self.nranks);
        self.fault = plan;
        self
    }
}

/// Marker kept for API clarity in harnesses: whether a run carries real
/// matrix data (decided by the matrices themselves).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeMode {
    /// Matrices are real-backed; kernels actually execute.
    Real,
    /// Matrices are virtual; only time is charged.
    Modeled,
}

/// Per-rank communicator under the simulator.
pub struct SimComm {
    proc: SimProc,
    machine: Machine,
    /// One-sided operations issued but not yet known complete
    /// (for `fence`).
    outstanding: Vec<srumma_sim::TransferId>,
    /// Comm-level recorder: algorithm task spans (virtual-time) and the
    /// fetch/direct/task counters. Fine-grained transfer/compute/wait
    /// events stay with the kernel, which knows their exact virtual
    /// intervals; [`sim_run`] merges both streams.
    recorder: Recorder,
    /// Per-rank gemm packing workspace, reused across every real-backed
    /// `gemm` this rank executes.
    ws: GemmWorkspace,
    /// Injected faults, applied in virtual time.
    fault: FaultPlan,
    /// Gets issued so far (indexes the deterministic spike schedule).
    gets_issued: u64,
}

/// Stretch every time component of a message cost by `f` (two-sided
/// traffic touching a straggler: both hosts' progress engines are in
/// the critical path, so the whole message slows down).
fn scale_cost(mut cost: TransferCost, f: f64) -> TransferCost {
    if f > 1.0 {
        cost.latency *= f;
        cost.initiator_cpu *= f;
        cost.remote_cpu *= f;
        cost.wire *= f;
        cost.membw *= f;
    }
    cost
}

impl SimComm {
    fn membw_group(&self, rank: usize) -> usize {
        rank / self.machine.shm.membw_group_size.max(1)
    }

    /// Fault model for **one-sided** gets/puts: only the initiator-side
    /// work (CPU issue cost, the initiator-driven copy) slows down with
    /// the initiator's own factor. The *target* never appears here — a
    /// straggling host still serves remote gets at full speed, because
    /// the NIC/memory system satisfies them without its CPU (the
    /// paper's asymmetry, and the mechanism behind SRUMMA's graceful
    /// degradation).
    fn fault_onesided(&mut self, mut cost: TransferCost) -> TransferCost {
        let f = self.fault.slow_factor(self.proc.rank());
        if f > 1.0 {
            cost.initiator_cpu *= f;
            cost.membw *= f;
        }
        let spike = self.fault.get_spike(self.proc.rank(), self.gets_issued);
        self.gets_issued += 1;
        if spike > 0.0 {
            cost.latency += spike;
            self.recorder.count_delay();
        }
        cost
    }

    /// Fault factor for **two-sided** traffic with `peer`: MPI progress
    /// is host-driven at both endpoints, so the slower one gates the
    /// message.
    fn fault_msg(&self, peer: usize) -> f64 {
        self.fault.msg_factor(self.proc.rank(), peer)
    }

    /// A straggler's own host copies (eager buffer staging) also slow.
    fn fault_self(&self) -> f64 {
        self.fault.slow_factor(self.proc.rank())
    }

    /// The underlying simulator handle (exposed for harness-level
    /// instrumentation such as custom trace labels).
    pub fn proc(&self) -> &SimProc {
        &self.proc
    }

    /// The machine profile this run models.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    fn pair_key(src: usize, dst: usize, tag: u64) -> u64 {
        ((src as u64) << 44) | ((dst as u64) << 24) | (tag & 0xFF_FFFF)
    }

    /// Charge the network/membw portion of an MPI-style message and
    /// post it; returns nothing (fire-and-forget for the sender).
    fn post_message(
        &mut self,
        dst: usize,
        tag: u64,
        data: &[f64],
        bytes: u64,
        cost: TransferCost,
        label: &str,
    ) {
        let me = self.proc.rank();
        let id = self.proc.issue_transfer(TransferSpec {
            cost,
            src_rank: me,
            dst_rank: dst,
            bytes,
            label: label.to_string(),
        });
        let avail_at = self.proc.transfer_done_at(id);
        self.proc.post_msg(
            dst,
            tag,
            srumma_sim::kernel::Msg {
                avail_at,
                payload: data.to_vec(),
                bytes,
            },
        );
    }
}

impl Comm for SimComm {
    fn rank(&self) -> usize {
        self.proc.rank()
    }

    fn nranks(&self) -> usize {
        self.proc.nranks()
    }

    fn topology(&self) -> Topology {
        self.proc.topology()
    }

    fn prefer_direct_access(&self, owner: usize) -> bool {
        self.same_domain(owner) && self.machine.shm.cacheable_remote
    }

    fn now(&self) -> f64 {
        self.proc.now()
    }

    fn recorder(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    fn ws_grow_count(&self) -> u64 {
        self.ws.grow_count()
    }

    fn configure_gemm(&mut self, cfg: &GemmConfig) {
        // Same idempotent swap as the thread backend: only a config
        // that actually differs replaces the workspace. Modeled runs
        // never touch the buffers, so this is cheap either way.
        let resolved = GemmWorkspace::configured(*cfg);
        if resolved.config() != self.ws.config() {
            self.ws = resolved;
        }
    }

    fn barrier(&mut self) {
        self.proc.barrier();
    }

    fn nbget(&mut self, mat: &DistMatrix, owner: usize, buf: &mut Vec<f64>) -> GetHandle {
        let me = self.proc.rank();
        let (rows, cols) = mat.copy_block_into(owner, buf);
        self.recorder.count_fetch((rows * cols * 8) as u64);
        // `owner` indexes the data slot; the *cost* endpoint is the rank
        // whose memory serves it (they differ for staged/layered
        // matrices — see `CostMap`).
        let serve = mat.cost_rank(owner);
        if serve == me {
            // Served from our own memory: the algorithm normally uses a
            // direct view, but a copy still costs a local memcpy.
            let bytes = (rows * cols * 8) as u64;
            let cost = protocol::shm_copy(&self.machine, bytes as usize, false);
            let cost = self.fault_onesided(cost);
            let id = self.proc.issue_transfer(TransferSpec {
                cost,
                src_rank: me,
                dst_rank: me,
                bytes,
                label: "local-copy".to_string(),
            });
            return GetHandle::Sim(id);
        }
        let bytes = (rows * cols * 8) as u64;
        let topo = self.proc.topology();
        let cost = if topo.same_domain(me, serve) {
            self.recorder.count_intragroup(bytes);
            let cross = self.membw_group(me) != self.membw_group(serve);
            protocol::shm_copy(&self.machine, bytes as usize, cross)
        } else {
            self.recorder.count_internode(bytes);
            protocol::rma_get(&self.machine, bytes as usize)
        };
        let cost = self.fault_onesided(cost);
        let id = self.proc.issue_transfer(TransferSpec {
            cost,
            src_rank: serve,
            dst_rank: me,
            bytes,
            label: format!("get<-{owner}"),
        });
        GetHandle::Sim(id)
    }

    fn wait(&mut self, h: GetHandle) {
        match h {
            GetHandle::Ready => {}
            GetHandle::Sim(id) => self.proc.wait_transfer(id),
            GetHandle::Virt(_) => unreachable!("sim backend issues no virtual-clock transfers"),
        }
    }

    fn fence(&mut self) {
        for id in self.outstanding.drain(..) {
            self.proc.wait_transfer(id);
        }
    }

    fn nbput(&mut self, mat: &DistMatrix, owner: usize, data: &[f64]) -> GetHandle {
        let me = self.proc.rank();
        mat.copy_block_from(owner, data);
        let bytes = mat.block_bytes(owner);
        let topo = self.proc.topology();
        let serve = mat.cost_rank(owner);
        let cost = if serve == me || topo.same_domain(me, serve) {
            if serve != me {
                self.recorder.count_intragroup(bytes);
            }
            let cross = serve != me && self.membw_group(me) != self.membw_group(serve);
            protocol::shm_copy(&self.machine, bytes as usize, cross)
        } else {
            self.recorder.count_internode(bytes);
            protocol::rma_put(&self.machine, bytes as usize)
        };
        let id = self.proc.issue_transfer(TransferSpec {
            cost,
            src_rank: me,
            dst_rank: serve,
            bytes,
            label: format!("put->{owner}"),
        });
        self.outstanding.push(id);
        GetHandle::Sim(id)
    }

    fn acc(&mut self, mat: &DistMatrix, owner: usize, scale: f64, data: &[f64]) {
        let me = self.proc.rank();
        mat.acc_block_from(owner, scale, data);
        let bytes = mat.block_bytes(owner);
        let topo = self.proc.topology();
        let (rows, cols) = mat.block_dims(owner);
        // The elementwise add runs on the target host (an ARMCI/LAPI
        // accumulate handler): model it as remote CPU time at one add
        // per element, stolen from the owner's processor.
        let add_time = (rows * cols) as f64 / self.machine.cpu.peak_flops;
        let serve = mat.cost_rank(owner);
        let mut cost = if serve == me || topo.same_domain(me, serve) {
            if serve != me {
                self.recorder.count_intragroup(bytes);
            }
            let cross = serve != me && self.membw_group(me) != self.membw_group(serve);
            protocol::shm_copy(&self.machine, bytes as usize, cross)
        } else {
            self.recorder.count_internode(bytes);
            protocol::rma_put(&self.machine, bytes as usize)
        };
        if serve == me {
            // Local accumulate: our own CPU does the adds.
            self.proc.advance(add_time);
        } else {
            cost.remote_cpu += add_time;
        }
        let id = self.proc.issue_transfer(TransferSpec {
            cost,
            src_rank: me,
            dst_rank: serve,
            bytes,
            label: format!("acc->{owner}"),
        });
        self.proc.wait_transfer(id);
    }

    fn gemm(
        &mut self,
        ta: Op,
        tb: Op,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: Option<MatRef<'_>>,
        b: Option<MatRef<'_>>,
        c: Option<MatMut<'_>>,
        direct: bool,
        label: &str,
    ) {
        let base = self.machine.cpu.gemm_time(m, n, k);
        let factor = if direct {
            self.machine.shm.direct_access_eff.max(1e-3)
        } else {
            1.0
        };
        // A straggler's compute stretches by its slowdown factor.
        self.proc
            .charge_compute(base / factor * self.fault_self(), label);
        if let (Some(a), Some(b), Some(c)) = (a, b, c) {
            dgemm_ws(ta, tb, alpha, a, b, 1.0, c, &mut self.ws);
        }
    }

    fn send(&mut self, dst: usize, tag: u64, data: &[f64], bytes: u64) {
        let me = self.proc.rank();
        assert_ne!(me, dst, "send to self");
        let mach = self.machine.clone();
        let same = self.same_domain(dst);
        if same {
            // Intra-domain MPI: staged through the library's shared
            // progress channel (Path::ShmChannel). Large messages pay
            // the rendezvous handshake here too — intra-node MPI was
            // no less synchronous in 2004.
            let cost = scale_cost(
                protocol::mpi_send_recv(&mach, bytes as usize, true),
                self.fault_msg(dst),
            );
            if bytes as usize > mach.net.eager_threshold {
                self.proc.pair_sync(Self::pair_key(me, dst, tag));
                let id = self.proc.issue_transfer(TransferSpec {
                    cost,
                    src_rank: me,
                    dst_rank: dst,
                    bytes,
                    label: "mpi-shm-rndv".to_string(),
                });
                let avail_at = self.proc.transfer_done_at(id);
                self.proc.post_msg(
                    dst,
                    tag,
                    srumma_sim::kernel::Msg {
                        avail_at,
                        payload: data.to_vec(),
                        bytes,
                    },
                );
                self.proc.wait_transfer(id);
            } else {
                self.post_message(dst, tag, data, bytes, cost, "mpi-shm");
            }
        } else if bytes as usize <= mach.net.eager_threshold {
            // Eager: copy into a system buffer, NIC drains it.
            self.proc
                .advance(bytes as f64 / mach.net.host_copy_bandwidth * self.fault_self());
            let cost = scale_cost(
                TransferCost {
                    latency: mach.net.mpi_latency,
                    initiator_cpu: 0.0,
                    remote_cpu: 0.0,
                    wire: bytes as f64 / mach.net.mpi_bandwidth,
                    membw: 0.0,
                    path: Path::Network,
                    async_fraction: 0.9,
                },
                self.fault_msg(dst),
            );
            self.post_message(dst, tag, data, bytes, cost, "mpi-eager");
        } else {
            // Rendezvous: handshake with the receiver, then a transfer
            // the host must keep driving (poor overlap — Figure 7).
            self.proc.pair_sync(Self::pair_key(me, dst, tag));
            let cost = scale_cost(
                TransferCost {
                    latency: 3.0 * mach.net.mpi_latency,
                    initiator_cpu: 0.0,
                    remote_cpu: 0.0,
                    wire: bytes as f64 / mach.net.mpi_bandwidth,
                    membw: 0.0,
                    path: Path::Network,
                    async_fraction: mach.net.rndv_progress_fraction,
                },
                self.fault_msg(dst),
            );
            let id = self.proc.issue_transfer(TransferSpec {
                cost,
                src_rank: me,
                dst_rank: dst,
                bytes,
                label: "mpi-rndv".to_string(),
            });
            let avail_at = self.proc.transfer_done_at(id);
            self.proc.post_msg(
                dst,
                tag,
                srumma_sim::kernel::Msg {
                    avail_at,
                    payload: data.to_vec(),
                    bytes,
                },
            );
            // Blocking rendezvous send completes at delivery.
            self.proc.wait_transfer(id);
        }
    }

    fn recv(&mut self, src: usize, tag: u64, buf: &mut Vec<f64>, bytes: u64) {
        let me = self.proc.rank();
        assert_ne!(me, src, "recv from self");
        let mach = self.machine.clone();
        let same = self.same_domain(src);
        if bytes as usize > mach.net.eager_threshold {
            // Rendezvous handshake (intra- and inter-domain alike).
            self.proc.pair_sync(Self::pair_key(src, me, tag));
        }
        let msg = self.proc.recv_msg(src, tag);
        buf.clear();
        buf.extend_from_slice(&msg.payload);
        // Receiver-side copy out of the system buffer (eager network
        // path only; the shm-channel rate already covers both copies).
        if !same && bytes as usize <= mach.net.eager_threshold {
            self.proc
                .advance(bytes as f64 / mach.net.host_copy_bandwidth * self.fault_self());
        }
    }

    fn sendrecv(
        &mut self,
        dst: usize,
        tag: u64,
        send_data: &[f64],
        send_bytes: u64,
        src: usize,
        recv_buf: &mut Vec<f64>,
        recv_bytes: u64,
    ) {
        // Deadlock-free buffered exchange (MPI_Sendrecv semantics):
        // the outgoing message is posted without a rendezvous
        // handshake, then the incoming one is received.
        let me = self.proc.rank();
        assert_ne!(me, dst);
        let mach = self.machine.clone();
        if self.same_domain(dst) {
            // Buffered exchange: full shm-channel cost, no handshake
            // (MPI_Sendrecv must not deadlock on a ring).
            let cost = scale_cost(
                protocol::mpi_send_recv(&mach, send_bytes as usize, true),
                self.fault_msg(dst),
            );
            self.post_message(dst, tag, send_data, send_bytes, cost, "xchg-shm");
        } else {
            self.proc
                .advance(send_bytes as f64 / mach.net.host_copy_bandwidth * self.fault_self());
            let cost = scale_cost(
                TransferCost {
                    latency: mach.net.mpi_latency,
                    initiator_cpu: 0.0,
                    remote_cpu: 0.0,
                    wire: send_bytes as f64 / mach.net.mpi_bandwidth,
                    membw: 0.0,
                    path: Path::Network,
                    async_fraction: 0.9,
                },
                self.fault_msg(dst),
            );
            self.post_message(dst, tag, send_data, send_bytes, cost, "xchg-net");
        }
        let same_src = self.same_domain(src);
        let msg = self.proc.recv_msg(src, tag);
        recv_buf.clear();
        recv_buf.extend_from_slice(&msg.payload);
        if !same_src {
            self.proc
                .advance(recv_bytes as f64 / mach.net.host_copy_bandwidth * self.fault_self());
        }
    }
}

/// Run one simulated parallel program: `body` once per rank against a
/// [`SimComm`]. Barrier latency is modeled as a `⌈log₂ P⌉`-deep
/// message-latency tree.
pub fn sim_run<T, F>(opts: &SimOptions, body: F) -> SimResult<T>
where
    T: Send,
    F: Fn(&mut SimComm) -> T + Sync,
{
    let topology = opts.machine.topology(opts.nranks);
    let depth = (opts.nranks.max(2) as f64).log2().ceil();
    let barrier_latency = depth
        * if topology.nnodes() == 1 {
            opts.machine.shm.latency * 4.0
        } else {
            opts.machine.net.mpi_latency
        };
    let cfg = SimConfig {
        topology,
        membw_group_size: opts.machine.shm.membw_group_size,
        barrier_latency,
        nic_channels: opts.machine.net.nic_channels,
        mpi_shm_channels: opts.machine.net.mpi_shm_channels,
        trace: opts.trace,
    };
    let machine = &opts.machine;
    let trace = opts.trace;
    let fault = &opts.fault;
    let res = run_sim(cfg, move |proc| {
        let rank = proc.rank();
        let mut comm = SimComm {
            proc: proc.clone(),
            machine: machine.clone(),
            outstanding: Vec::new(),
            recorder: Recorder::new(rank, trace),
            ws: GemmWorkspace::new(),
            fault: fault.clone(),
            gets_issued: 0,
        };
        let out = body(&mut comm);
        let (events, counters) = comm.recorder.take();
        (out, events, counters)
    });

    // Merge the comm-level streams (algorithm task spans, counters)
    // into the kernel's result: one unified trace and one RunStats.
    let SimResult {
        outputs,
        mut stats,
        mut trace,
    } = res;
    let mut plain = Vec::with_capacity(outputs.len());
    for (rank, (out, events, counters)) in outputs.into_iter().enumerate() {
        trace.extend(events);
        if rank < stats.ranks.len() {
            stats.ranks[rank].absorb_counters(&counters);
        }
        plain.push(out);
    }
    trace.sort_by(|a, b| a.t0.total_cmp(&b.t0).then(a.rank.cmp(&b.rank)));
    SimResult {
        outputs: plain,
        stats,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srumma_model::ProcGrid;

    fn linux16() -> SimOptions {
        SimOptions::new(Machine::linux_myrinet(), 16)
    }

    #[test]
    fn get_moves_real_data_between_ranks() {
        let grid = ProcGrid::new(4, 4);
        let mat = DistMatrix::create(grid, 32, 32);
        let global = srumma_dense::Matrix::random(32, 32, 5);
        mat.scatter(&global);
        let res = sim_run(&linux16(), |c| {
            // Every rank fetches rank 0's block and returns a checksum.
            let mut buf = Vec::new();
            c.get(&mat, 0, &mut buf);
            buf.iter().sum::<f64>()
        });
        let b0 = mat.read_block(0);
        let expect: f64 = b0.mat().unwrap().data()[..64].iter().sum();
        for v in &res.outputs {
            assert!((v - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn intra_node_get_is_much_cheaper_than_remote() {
        // Linux cluster: 2 ranks/node. Rank 1 is on rank 0's node;
        // rank 2 is not.
        let grid = ProcGrid::new(4, 4);
        let mat = DistMatrix::create_virtual(grid, 2048, 2048);
        let res = sim_run(&linux16(), |c| {
            if c.rank() == 1 || c.rank() == 2 {
                let t0 = c.now();
                let mut buf = Vec::new();
                c.get(&mat, 0, &mut buf);
                c.now() - t0
            } else {
                0.0
            }
        });
        let shm_time = res.outputs[1];
        let net_time = res.outputs[2];
        assert!(
            net_time > 3.0 * shm_time,
            "shm {shm_time} vs net {net_time}"
        );
        assert!(res.stats.ranks[1].bytes_shm > 0);
        assert!(res.stats.ranks[2].bytes_network > 0);
    }

    #[test]
    fn gemm_charges_model_time_and_computes() {
        let res = sim_run(&SimOptions::new(Machine::sgi_altix(), 2), |c| {
            let a = srumma_dense::Matrix::random(32, 16, 1);
            let b = srumma_dense::Matrix::random(16, 8, 2);
            let mut cm = srumma_dense::Matrix::zeros(32, 8);
            c.gemm(
                Op::N,
                Op::N,
                32,
                8,
                16,
                1.0,
                Some(a.as_ref()),
                Some(b.as_ref()),
                Some(cm.as_mut()),
                false,
                "t",
            );
            (c.now(), cm.as_slice().iter().sum::<f64>())
        });
        let expect_t = Machine::sgi_altix().cpu.gemm_time(32, 8, 16);
        for (t, sum) in &res.outputs {
            assert!((t - expect_t).abs() < 1e-15);
            assert!(sum.abs() > 0.0);
        }
    }

    #[test]
    fn direct_access_gemm_is_slower_on_x1_faster_than_copy_on_altix() {
        // The kernel-rate direction of Figure 5: charge factor reflects
        // cacheability of remote shared memory.
        for (machine, expect_slow) in [(Machine::cray_x1(), true), (Machine::sgi_altix(), false)] {
            let res = sim_run(&SimOptions::new(machine, 2), |c| {
                let t0 = c.now();
                c.gemm(
                    Op::N,
                    Op::N,
                    256,
                    256,
                    256,
                    1.0,
                    None,
                    None,
                    None,
                    true,
                    "d",
                );
                let direct = c.now() - t0;
                let t1 = c.now();
                c.gemm(
                    Op::N,
                    Op::N,
                    256,
                    256,
                    256,
                    1.0,
                    None,
                    None,
                    None,
                    false,
                    "c",
                );
                (direct, c.now() - t1)
            });
            let (direct, copied) = res.outputs[0];
            if expect_slow {
                assert!(direct > 3.0 * copied, "X1 direct {direct} vs {copied}");
            } else {
                assert!(direct < 1.2 * copied, "Altix direct {direct} vs {copied}");
            }
        }
    }

    #[test]
    fn send_recv_roundtrip_real_payload() {
        let res = sim_run(&linux16(), |c| {
            if c.rank() == 0 {
                let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
                c.send(15, 3, &data, 800);
                0.0
            } else if c.rank() == 15 {
                let mut buf = Vec::new();
                c.recv(0, 3, &mut buf, 800);
                buf.iter().sum()
            } else {
                0.0
            }
        });
        assert_eq!(res.outputs[15], 4950.0);
    }

    #[test]
    fn rendezvous_send_blocks_until_receiver_arrives() {
        let big = 1u64 << 20; // above eager threshold
        let res = sim_run(&linux16(), |c| {
            if c.rank() == 0 {
                let t0 = c.now();
                c.send(2, 1, &[], big);
                c.now() - t0
            } else if c.rank() == 2 {
                c.proc().charge_compute(5.0, "late receiver");
                let mut buf = Vec::new();
                c.recv(0, 1, &mut buf, big);
                0.0
            } else {
                0.0
            }
        });
        // The sender had to wait ~5 s for the receiver's handshake.
        assert!(res.outputs[0] > 4.9, "sender blocked {}", res.outputs[0]);
    }

    #[test]
    fn eager_send_does_not_block_on_receiver() {
        let small = 1024u64;
        let res = sim_run(&linux16(), |c| {
            if c.rank() == 0 {
                let t0 = c.now();
                c.send(2, 1, &[], small);
                c.now() - t0
            } else if c.rank() == 2 {
                c.proc().charge_compute(5.0, "late receiver");
                let mut buf = Vec::new();
                c.recv(0, 1, &mut buf, small);
                0.0
            } else {
                0.0
            }
        });
        assert!(
            res.outputs[0] < 1e-3,
            "eager sender stalled {}",
            res.outputs[0]
        );
    }

    #[test]
    fn sendrecv_ring_shift_does_not_deadlock() {
        let big = 1u64 << 20;
        let res = sim_run(&linux16(), |c| {
            let n = c.nranks();
            let right = (c.rank() + 1) % n;
            let left = (c.rank() + n - 1) % n;
            let data = vec![c.rank() as f64];
            let mut buf = Vec::new();
            c.sendrecv(right, 7, &data, big, left, &mut buf, big);
            buf[0]
        });
        for (r, v) in res.outputs.iter().enumerate() {
            let n = res.outputs.len();
            assert_eq!(*v, ((r + n - 1) % n) as f64);
        }
    }

    #[test]
    fn straggler_slows_own_compute_but_still_serves_gets_at_full_speed() {
        // The fault model's load-bearing asymmetry: a 4× straggler's
        // *own* gemm charge stretches 4×, but a healthy peer fetching
        // the straggler's block over the one-sided path pays exactly
        // the healthy price (the NIC serves it, not the slow host).
        let run = |opts: &SimOptions| {
            let grid = ProcGrid::new(4, 4);
            let mat = DistMatrix::create_virtual(grid, 2048, 2048);
            sim_run(opts, |c| {
                if c.rank() == 0 {
                    let t0 = c.now();
                    c.gemm(
                        Op::N,
                        Op::N,
                        256,
                        256,
                        256,
                        1.0,
                        None,
                        None,
                        None,
                        false,
                        "g",
                    );
                    c.now() - t0
                } else if c.rank() == 2 {
                    // Rank 2 is on another node: remote RMA get from 0.
                    let t0 = c.now();
                    let mut buf = Vec::new();
                    c.get(&mat, 0, &mut buf);
                    c.now() - t0
                } else {
                    0.0
                }
            })
        };
        let healthy = run(&linux16());
        let faulty =
            run(&linux16().with_faults(crate::fault::FaultPlan::single_straggler(16, 0, 4.0)));
        let (hc, hg) = (healthy.outputs[0], healthy.outputs[2]);
        let (fc, fg) = (faulty.outputs[0], faulty.outputs[2]);
        assert!(
            (fc / hc - 4.0).abs() < 1e-9,
            "straggler compute {fc} should be 4x healthy {hc}"
        );
        assert!(
            (fg - hg).abs() < 1e-12,
            "get served by the straggler cost {fg}, healthy {hg} — one-sided \
             service must not slow down"
        );
    }

    #[test]
    fn spiked_gets_add_latency_deterministically() {
        let grid = ProcGrid::new(4, 4);
        let mat = DistMatrix::create_virtual(grid, 2048, 2048);
        let run = |plan: FaultPlan| {
            sim_run(&linux16().with_faults(plan), |c| {
                let mut t = 0.0;
                for owner in 0..c.nranks() {
                    let t0 = c.now();
                    let mut buf = Vec::new();
                    c.get(&mat, owner, &mut buf);
                    t += c.now() - t0;
                }
                t
            })
        };
        let plan = FaultPlan::random_stragglers(7, 16).with_get_spikes(0.5, 0.25);
        let a = run(plan.clone());
        let b = run(plan);
        let healthy = run(FaultPlan::healthy());
        assert_eq!(
            a.outputs, b.outputs,
            "same plan must reproduce identical virtual times"
        );
        assert!(
            a.outputs.iter().sum::<f64>() > healthy.outputs.iter().sum::<f64>() + 0.2,
            "spikes should visibly lengthen get time"
        );
    }

    #[test]
    fn barrier_latency_scales_with_ranks() {
        let t4 = sim_run(&SimOptions::new(Machine::linux_myrinet(), 4), |c| {
            c.barrier();
            c.now()
        })
        .makespan();
        let t64 = sim_run(&SimOptions::new(Machine::linux_myrinet(), 64), |c| {
            c.barrier();
            c.now()
        })
        .makespan();
        assert!(t64 > t4);
    }
}
