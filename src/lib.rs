//! # srumma — facade crate
//!
//! Re-exports the full SRUMMA reproduction workspace under one roof.
//! See the individual crates for detail:
//!
//! * [`srumma_core`] (re-exported as [`core`]) — SRUMMA + baselines;
//! * [`srumma_comm`] ([`comm`]) — ARMCI/MPI-style substrate;
//! * [`srumma_sim`] ([`sim`]) — deterministic virtual-time simulator;
//! * [`srumma_model`] ([`model`]) — machine & protocol cost models;
//! * [`srumma_dense`] ([`dense`]) — serial blocked dgemm;
//! * [`srumma_trace`] ([`trace`]) — per-rank event recorder & metrics.

pub use srumma_comm as comm;
pub use srumma_core as core;
pub use srumma_dense as dense;
pub use srumma_model as model;
pub use srumma_sim as sim;
pub use srumma_trace as trace;

pub use srumma_comm::{ChaosComm, FaultPlan, RankDeath};
pub use srumma_core::{Algorithm, GemmSpec, ShmemFlavor, SrummaOptions, SummaOptions};
pub use srumma_core::{BatchEntry, BatchResult, BatchSpec, ReplicationFactor, SparseMasks};
pub use srumma_dense::{max_abs_diff, BlockMask, Matrix, Op};
pub use srumma_model::{Machine, Platform, Topology};
