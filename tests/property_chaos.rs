//! Chaos property suite: randomized fault plans (stragglers, get
//! spikes, rank death) on all three backends, checked against the
//! serial kernel — hostile conditions must degrade *performance*,
//! never *correctness*.
//!
//! Every plan is seeded and every schedule is a pure function of its
//! seed, so each failure message carries a one-line rerun command.
//! Set `SRUMMA_PROP_SEED` to pin one case or `SRUMMA_PROP_CASES` to
//! widen the sweep (see `srumma::dense::prop`).

use srumma::core::driver::{
    default_grid, multiply_exec, multiply_exec_chaos, multiply_threads_chaos,
    multiply_verified_chaos, multiply_verified_sparse_chaos, serial_reference,
    sparse_serial_reference,
};
use srumma::dense::{max_abs_diff, prop_rerun, prop_seeds, Rng};
use srumma::{
    Algorithm, BlockMask, FaultPlan, GemmSpec, Machine, Matrix, SparseMasks, SrummaOptions,
};

const CASES: u64 = 6;

/// Per-element absolute tolerance for a k-term dot product.
fn tolerance(k: usize) -> f64 {
    1e-12 * (k.max(1) as f64) * 100.0
}

/// Wall-clock backends sleep for real on injected faults — keep the
/// injected latencies tiny so the suite stays fast.
const WALL_SPIKE_SECONDS: f64 = 2e-4;

/// Straggler-plus-spike plans on all three backends: the injected
/// delays stretch the schedule but the gathered C still matches the
/// serial kernel. SUMMA rides along under the simulator, exercising
/// the two-sided (`msg_factor`) fault path.
#[test]
fn straggled_backends_match_serial_reference() {
    let test = "straggled_backends_match_serial_reference";
    for seed in prop_seeds(0xC4A0_57A6, CASES) {
        let mut rng = Rng::new(seed);
        let n = rng.range(8, 32);
        let spec = GemmSpec::square(n);
        let nranks = *rng.pick(&[2usize, 4, 6, 8]);
        let a = Matrix::random(spec.m, spec.k, seed ^ 0xA);
        let b = Matrix::random(spec.k, spec.n, seed ^ 0xB);
        let expect = serial_reference(&spec, &a, &b);
        let opts = SrummaOptions::default();
        let plan =
            FaultPlan::random_stragglers(seed, nranks).with_get_spikes(0.25, WALL_SPIKE_SECONDS);

        let (c_threads, _) = multiply_threads_chaos(nranks, &opts, &spec, &a, &b, &plan);
        let d = max_abs_diff(&c_threads, &expect);
        assert!(
            d < tolerance(spec.k),
            "seed {seed:#x}: threads n={n} x{nranks}: |diff|={d:e}\n{}",
            prop_rerun(seed, test)
        );

        let workers = *rng.pick(&[1usize, 2, 3, 4]);
        let (c_exec, _) = multiply_exec_chaos(nranks, workers, &opts, &spec, &a, &b, &plan);
        let d = max_abs_diff(&c_exec, &expect);
        assert!(
            d < tolerance(spec.k),
            "seed {seed:#x}: exec n={n} x{nranks} on {workers} workers: |diff|={d:e}\n{}",
            prop_rerun(seed, test)
        );

        // Virtual time costs nothing: spike harder under the simulator,
        // and run SUMMA too (its broadcasts cross the two-sided fault
        // path the one-sided algorithms never touch).
        let sim_plan = FaultPlan::random_stragglers(seed, nranks).with_get_spikes(0.25, 1e-3);
        let machine = Machine::linux_myrinet();
        for alg in [Algorithm::Srumma(opts), Algorithm::summa_default()] {
            let (c_sim, stats) =
                multiply_verified_chaos(&machine, nranks, &alg, &spec, &a, &b, &sim_plan);
            let d = max_abs_diff(&c_sim, &expect);
            assert!(
                d < tolerance(spec.k),
                "seed {seed:#x}: sim {} n={n} x{nranks}: |diff|={d:e}\n{}",
                alg.name(),
                prop_rerun(seed, test)
            );
            assert!(stats.makespan > 0.0);
        }
    }
}

/// Fail-stop rank death with re-execution: the chaotic run's C must be
/// **bitwise** identical to the healthy executor run — the survivor
/// drives the dead rank's machine through the same tasks in the same
/// order with the same kernel, so even roundoff agrees.
#[test]
fn rank_death_reexecution_is_bitwise_exact() {
    let test = "rank_death_reexecution_is_bitwise_exact";
    // (nranks, workers, dead rank, tasks it completes first)
    for &(nranks, workers, dead, after) in
        &[(4usize, 2usize, 1usize, 0usize), (6, 3, 5, 1), (8, 2, 3, 2)]
    {
        let seed = (0xDEAD_0000 + nranks as u64) << 8 | dead as u64;
        let spec = GemmSpec::square(32);
        let a = Matrix::random(spec.m, spec.k, seed ^ 0xA);
        let b = Matrix::random(spec.k, spec.n, seed ^ 0xB);
        let opts = SrummaOptions::default();

        let (healthy, _) = multiply_exec(nranks, workers, &Algorithm::Srumma(opts), &spec, &a, &b);
        let plan = FaultPlan::healthy().with_death(dead, after);
        let (chaotic, res) = multiply_exec_chaos(nranks, workers, &opts, &spec, &a, &b, &plan);

        assert_eq!(
            max_abs_diff(&chaotic, &healthy),
            0.0,
            "x{nranks} w{workers} death(rank={dead}, after={after}): \
             re-executed C differs from the healthy run\n{}",
            prop_rerun(seed, test)
        );
        let expect = serial_reference(&spec, &a, &b);
        let d = max_abs_diff(&chaotic, &expect);
        assert!(d < tolerance(spec.k), "vs serial: |diff|={d:e}");
        assert!(
            res.stats.total_tasks_reexecuted() > 0,
            "x{nranks} death(rank={dead}, after={after}): nobody re-executed anything"
        );
        assert_eq!(res.outputs.len(), nranks, "every rank must complete");
    }
}

/// A death index at or past the rank's task count never fires: the run
/// completes as if healthy and nothing is re-executed.
#[test]
fn death_past_the_task_list_never_fires() {
    let spec = GemmSpec::square(16);
    let a = Matrix::random(spec.m, spec.k, 0xF1);
    let b = Matrix::random(spec.k, spec.n, 0xF2);
    let opts = SrummaOptions::default();
    let plan = FaultPlan::healthy().with_death(1, 1_000_000);
    let (c, res) = multiply_exec_chaos(4, 2, &opts, &spec, &a, &b, &plan);
    let expect = serial_reference(&spec, &a, &b);
    assert!(max_abs_diff(&c, &expect) < tolerance(spec.k));
    assert_eq!(res.stats.total_tasks_reexecuted(), 0);
}

/// Masked (block-sparse) multiplies under a straggler-and-spike plan on
/// the simulator: pruning composes with fault injection. The density-0
/// corner is the sharp one — ranks whose every task is pruned hold
/// every fence while the plan delays the ranks they wait on.
#[test]
fn sparse_sim_chaos_matches_masked_reference() {
    let test = "sparse_sim_chaos_matches_masked_reference";
    for seed in prop_seeds(0x5BA_0C4A0, CASES) {
        let mut rng = Rng::new(seed);
        let n = rng.range(8, 32);
        let spec = GemmSpec::square(n);
        let nranks = *rng.pick(&[2usize, 4, 6]);
        let grid = default_grid(nranks);
        let a = Matrix::random(spec.m, spec.k, seed ^ 0xA);
        let b = Matrix::random(spec.k, spec.n, seed ^ 0xB);
        let density = |rng: &mut Rng| match rng.below(4) {
            0 => 0.0,
            _ => 0.3 + 0.2 * rng.below(3) as f64,
        };
        let masks = SparseMasks::new(
            BlockMask::random(grid.p, grid.q, density(&mut rng), seed ^ 0xAAAA),
            BlockMask::random(grid.p, grid.q, density(&mut rng), seed ^ 0xBBBB),
        );
        let plan = FaultPlan::random_stragglers(seed, nranks).with_get_spikes(0.3, 1e-3);
        let opts = SrummaOptions::default();
        let (c, _) = multiply_verified_sparse_chaos(
            &Machine::linux_myrinet(),
            nranks,
            &opts,
            &spec,
            &a,
            &b,
            &masks,
            &plan,
        );
        let expect = sparse_serial_reference(&spec, &a, &b, &masks);
        let d = max_abs_diff(&c, &expect);
        assert!(
            d < tolerance(spec.k),
            "seed {seed:#x}: sparse sim chaos n={n} x{nranks} da={:.2} db={:.2}: |diff|={d:e}\n{}",
            masks.a.as_ref().map_or(1.0, |m| m.density()),
            masks.b.as_ref().map_or(1.0, |m| m.density()),
            prop_rerun(seed, test)
        );
    }
}

/// The determinism guarantee itself: the same plan under the simulator
/// produces bit-for-bit identical results — C, the makespan, and the
/// injected-delay count — across repeated runs.
#[test]
fn sim_chaos_runs_are_bit_for_bit_reproducible() {
    let spec = GemmSpec::square(24);
    let nranks = 4;
    let a = Matrix::random(spec.m, spec.k, 0xD1);
    let b = Matrix::random(spec.k, spec.n, 0xD2);
    let plan = FaultPlan::random_stragglers(7, nranks).with_get_spikes(0.5, 2e-3);
    let machine = Machine::linux_myrinet();
    let alg = Algorithm::srumma_default();
    let (c1, s1) = multiply_verified_chaos(&machine, nranks, &alg, &spec, &a, &b, &plan);
    let (c2, s2) = multiply_verified_chaos(&machine, nranks, &alg, &spec, &a, &b, &plan);
    assert_eq!(max_abs_diff(&c1, &c2), 0.0, "C must be bitwise stable");
    assert_eq!(
        s1.makespan.to_bits(),
        s2.makespan.to_bits(),
        "virtual-time makespan must be bitwise stable"
    );
    assert_eq!(s1.total_delays_injected(), s2.total_delays_injected());
    assert!(
        s1.total_delays_injected() > 0,
        "a 50% spike rate must inject at least one delay"
    );
}
