//! Workspace-level integration tests: exercise the public facade the
//! way a downstream user would, and assert the paper's *qualitative*
//! claims hold in the model (small scale, so the suite stays fast; the
//! full-scale numbers live in the bench harnesses / EXPERIMENTS.md).

use srumma::core::driver::{
    measure_gflops, measure_modeled, multiply_threads, multiply_verified, serial_reference,
};
use srumma::{Algorithm, GemmSpec, Machine, Matrix, Op};

#[test]
fn facade_quickstart_flow() {
    let spec = GemmSpec::square(64);
    let a = Matrix::random(64, 64, 1);
    let b = Matrix::random(64, 64, 2);
    let (c, secs) = multiply_threads(4, &Algorithm::srumma_default(), &spec, &a, &b);
    assert!(secs > 0.0);
    let expect = serial_reference(&spec, &a, &b);
    assert!(srumma::dense::max_abs_diff(&c, &expect) < 1e-9);
}

#[test]
fn simulated_run_verifies_numerics_on_every_platform() {
    let spec = GemmSpec::new(Op::T, Op::N, 30, 26, 22);
    let a = Matrix::random(30, 22, 3);
    let b = Matrix::random(22, 26, 4);
    let expect = serial_reference(&spec, &a, &b);
    for machine in [
        Machine::linux_myrinet(),
        Machine::ibm_sp(),
        Machine::cray_x1(),
        Machine::sgi_altix(),
    ] {
        let (c, stats) =
            multiply_verified(&machine, 6, &Algorithm::srumma_default(), &spec, &a, &b);
        assert!(
            srumma::dense::max_abs_diff(&c, &expect) < 1e-9,
            "{:?}",
            machine.platform
        );
        assert!(stats.makespan > 0.0);
    }
}

#[test]
fn srumma_beats_pdgemm_on_every_platform() {
    // The paper's central claim, asserted at a representative point.
    let spec = GemmSpec::square(2000);
    for machine in [
        Machine::linux_myrinet(),
        Machine::ibm_sp(),
        Machine::cray_x1(),
        Machine::sgi_altix(),
    ] {
        let s = measure_gflops(&machine, 16, &Algorithm::srumma_default(), &spec);
        let p = measure_gflops(&machine, 16, &Algorithm::summa_default(), &spec);
        assert!(
            s > p,
            "{:?}: SRUMMA {s} must beat pdgemm {p}",
            machine.platform
        );
    }
}

#[test]
fn shared_memory_systems_show_the_biggest_gap() {
    // Figure 10's most profound gains are on the X1 and Altix.
    let spec = GemmSpec::square(2000);
    let ratio = |m: &Machine| {
        measure_gflops(m, 64, &Algorithm::srumma_default(), &spec)
            / measure_gflops(m, 64, &Algorithm::summa_default(), &spec)
    };
    let altix = ratio(&Machine::sgi_altix());
    let linux = ratio(&Machine::linux_myrinet());
    assert!(
        altix > linux,
        "Altix ratio {altix} should exceed Linux ratio {linux}"
    );
}

#[test]
fn nonblocking_overlap_helps_on_clusters() {
    use srumma::SrummaOptions;
    let spec = GemmSpec::square(4000);
    let machine = Machine::linux_myrinet();
    let double = measure_gflops(&machine, 16, &Algorithm::srumma_default(), &spec);
    let single = measure_gflops(
        &machine,
        16,
        &Algorithm::Srumma(SrummaOptions {
            double_buffer: false,
            ..Default::default()
        }),
        &spec,
    );
    assert!(
        double > single,
        "double buffering must help: {double} vs {single}"
    );
}

#[test]
fn zero_copy_matters_on_myrinet() {
    // Figure 9's claim.
    let spec = GemmSpec::square(4000);
    let with = measure_gflops(
        &Machine::linux_myrinet(),
        16,
        &Algorithm::srumma_default(),
        &spec,
    );
    let without = measure_gflops(
        &Machine::linux_myrinet().without_zero_copy(),
        16,
        &Algorithm::srumma_default(),
        &spec,
    );
    assert!(with > without, "zero-copy must help: {with} vs {without}");
}

#[test]
fn copy_flavor_wins_on_x1_direct_on_altix() {
    // Figure 5's claim.
    use srumma::{ShmemFlavor, SrummaOptions};
    let spec = GemmSpec::square(2000);
    let flavor = |m: &Machine, f: ShmemFlavor| {
        measure_gflops(
            m,
            16,
            &Algorithm::Srumma(SrummaOptions {
                shmem: f,
                ..Default::default()
            }),
            &spec,
        )
    };
    let x1 = Machine::cray_x1();
    assert!(flavor(&x1, ShmemFlavor::ForceCopy) > flavor(&x1, ShmemFlavor::ForceDirect));
    let altix = Machine::sgi_altix();
    assert!(flavor(&altix, ShmemFlavor::ForceDirect) > flavor(&altix, ShmemFlavor::ForceCopy));
    // And Auto picks the right flavor per machine.
    let auto_x1 = flavor(&x1, ShmemFlavor::Auto);
    assert!(auto_x1 >= flavor(&x1, ShmemFlavor::ForceDirect));
}

#[test]
fn overlap_statistics_track_the_pipeline() {
    let spec = GemmSpec::square(4000);
    let stats = measure_modeled(
        &Machine::linux_myrinet(),
        16,
        &Algorithm::srumma_default(),
        &spec,
    );
    let overlap = stats.mean_overlap().expect("cluster run must communicate");
    assert!(overlap > 0.5, "expected substantial overlap, got {overlap}");
    assert!(stats.total_network_bytes() > 0);
}

#[test]
fn determinism_of_the_full_stack() {
    let spec = GemmSpec::square(1000);
    let m = Machine::ibm_sp();
    let a = measure_modeled(&m, 32, &Algorithm::srumma_default(), &spec);
    let b = measure_modeled(&m, 32, &Algorithm::srumma_default(), &spec);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.final_times, b.final_times);
}

#[test]
fn cannon_is_competitive_but_synchronous() {
    // Cannon (square grid) should be in SRUMMA's ballpark on a quiet
    // machine — the algorithms have the same asymptotic efficiency.
    let spec = GemmSpec::square(2000);
    let m = Machine::linux_myrinet();
    let srumma = measure_gflops(&m, 16, &Algorithm::srumma_default(), &spec);
    let cannon = measure_gflops(&m, 16, &Algorithm::Cannon, &spec);
    assert!(cannon > 0.2 * srumma, "cannon {cannon} vs srumma {srumma}");
    assert!(
        srumma > cannon,
        "srumma {srumma} should still win vs {cannon}"
    );
}

#[test]
fn backends_agree_bitwise() {
    // With topology-dependent reordering disabled, the simulator and
    // the thread backend run the same algorithm code on the same data
    // in the same per-rank task order — so the results must match bit
    // for bit, not merely within tolerance. (With SMP-first/diagonal
    // shift enabled, the two backends' different topologies yield
    // different — equally valid — accumulation orders.)
    use srumma::SrummaOptions;
    let spec = GemmSpec::new(Op::T, Op::N, 33, 29, 41);
    let a = Matrix::random(33, 41, 77);
    let b = Matrix::random(41, 29, 78);
    let fixed_order = Algorithm::Srumma(SrummaOptions {
        smp_first: false,
        diagonal_shift: false,
        ..Default::default()
    });
    for alg in [fixed_order, Algorithm::summa_default()] {
        let (c_sim, _) = multiply_verified(&Machine::linux_myrinet(), 6, &alg, &spec, &a, &b);
        let (c_thr, _) = multiply_threads(6, &alg, &spec, &a, &b);
        assert_eq!(
            c_sim.as_slice(),
            c_thr.as_slice(),
            "{} differs across backends",
            alg.name()
        );
    }
}

#[test]
fn traced_runs_emit_perfetto_json_and_metrics_on_both_backends() {
    use srumma::core::driver::{measure_traced, multiply_threads_traced};
    use srumma::trace::{bench_report_json, chrome_trace_json, TraceKind};

    // Thread backend: wall-clock events from a real multiply.
    let spec = GemmSpec::square(48);
    let a = Matrix::random(48, 48, 11);
    let b = Matrix::random(48, 48, 12);
    let (c, run) = multiply_threads_traced(4, &Algorithm::srumma_default(), &spec, &a, &b);
    let expect = serial_reference(&spec, &a, &b);
    assert!(srumma::dense::max_abs_diff(&c, &expect) < 1e-9);
    assert!(!run.trace.is_empty(), "traced run must record events");
    assert!(
        run.trace.iter().any(|e| e.kind == TraceKind::Task),
        "algorithm layer must record task envelopes"
    );
    assert!(
        run.trace.iter().any(|e| e.kind == TraceKind::Barrier),
        "the closing barrier must be recorded"
    );
    assert!(run.stats.ranks.iter().map(|r| r.tasks).sum::<u64>() > 0);

    // Simulator backend: virtual-time events from a modeled run.
    let sim = measure_traced(
        &Machine::linux_myrinet(),
        8,
        &Algorithm::srumma_default(),
        &GemmSpec::square(2000),
    );
    assert!(!sim.trace.is_empty());
    assert!(sim.trace.iter().any(|e| e.kind == TraceKind::Compute));
    assert!(sim.trace.iter().any(|e| e.kind == TraceKind::Task));
    assert!(sim.stats.total_fetched_bytes() > 0);

    // Both exports are well-formed enough for Perfetto: a JSON array of
    // complete events, plus the metrics summary document.
    for run_trace in [&run.trace, &sim.trace] {
        let json = chrome_trace_json(run_trace);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\": \"X\""));
    }
    let report = bench_report_json(
        "e2e",
        "sim",
        &chrome_trace_json(&sim.trace),
        &sim.stats.summary_json(),
    );
    assert!(report.contains("\"bench\": \"e2e\""));
    assert!(report.contains("\"makespan_seconds\""));
}

#[test]
fn disabled_tracing_keeps_counters_but_no_events() {
    // The zero-cost-when-disabled contract: an untraced run records no
    // spans, yet the always-on counters still measure real traffic.
    let spec = GemmSpec::square(32);
    let a = Matrix::random(32, 32, 21);
    let b = Matrix::random(32, 32, 22);
    let (_, stats) = multiply_verified(
        &Machine::linux_myrinet(),
        4,
        &Algorithm::srumma_default(),
        &spec,
        &a,
        &b,
    );
    assert!(stats.ranks.iter().map(|r| r.tasks).sum::<u64>() > 0);
    assert!(stats.total_fetched_bytes() + stats.total_direct_bytes() > 0);
}

#[test]
#[ignore = "timing measurement; run manually with --release -- --ignored --nocapture"]
fn disabled_recorder_overhead_is_small() {
    // One-off check of the < 5 % disabled-recorder overhead budget on a
    // quickstart-sized multiply. The disabled path is a single branch
    // per instrumentation point (no clock read, no allocation), so the
    // honest comparison available in-tree is untraced vs fully traced:
    // the disabled cost is strictly below the enabled cost measured
    // here. Timing-based, hence ignored by default to keep CI stable.
    use srumma::core::driver::multiply_threads_traced;
    let spec = GemmSpec::square(64);
    let a = Matrix::random(64, 64, 1);
    let b = Matrix::random(64, 64, 2);
    let reps = 40;
    let time = |traced: bool| {
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            if traced {
                let _ = multiply_threads_traced(4, &Algorithm::srumma_default(), &spec, &a, &b);
            } else {
                let _ = multiply_threads(4, &Algorithm::srumma_default(), &spec, &a, &b);
            }
        }
        t0.elapsed().as_secs_f64() / reps as f64
    };
    time(false); // warm up thread spawn paths
    let off = time(false);
    let on = time(true);
    println!("untraced {off:.6}s  traced {on:.6}s  ratio {:.3}", on / off);
}

#[test]
fn isoefficiency_matches_simulated_scaling() {
    // Keep W/P^1.5 fixed (the paper's isoefficiency) and check the
    // simulated efficiency stays roughly flat.
    use srumma::model::isoeff::EqModel;
    let machine = Machine::linux_myrinet();
    let eff = |n: usize, p: usize| {
        let spec = GemmSpec::square(n);
        let g = measure_gflops(&machine, p, &Algorithm::srumma_default(), &spec);
        g / (p as f64 * machine.serial_gflops(n))
    };
    // N grows as sqrt(P): W = N^3 ∝ P^{3/2}.
    let e1 = eff(1000, 4);
    let e2 = eff(2000, 16);
    let e3 = eff(4000, 64);
    assert!(
        (e1 - e3).abs() < 0.25,
        "efficiency drifted along the isoefficiency curve: {e1} {e2} {e3}"
    );
    // And the analytic model agrees it should be roughly constant.
    let eq = EqModel::from_machine(&machine, 500);
    let a1 = eq.efficiency(1000, 4);
    let a3 = eq.efficiency(4000, 64);
    assert!((a1 - a3).abs() < 0.15, "analytic drift: {a1} vs {a3}");
}
