//! Property test: all three backends agree with the serial kernel over
//! randomized problems — shapes (including degenerate ones), transpose
//! cases, PBLAS scalars, rank counts, worker-pool sizes and SRUMMA
//! scheduling options.
//!
//! Seeds are deterministic (SplitMix64) and embedded in every assertion
//! message together with a copy-pasteable rerun command; set
//! `SRUMMA_PROP_SEED` to pin one case or `SRUMMA_PROP_CASES` to widen
//! the sweep (see `srumma::dense::prop`).

use srumma::core::driver::{
    default_grid, multiply_exec, multiply_exec_sparse, multiply_threads, multiply_threads_sparse,
    multiply_verified, multiply_verified_sparse, serial_reference, sparse_serial_reference,
};
use srumma::dense::{max_abs_diff, prop_rerun, prop_seeds, Rng};
use srumma::{
    Algorithm, BlockMask, GemmSpec, Machine, Matrix, Op, ShmemFlavor, SparseMasks, SrummaOptions,
};

const CASES: u64 = 24;

fn random_spec(rng: &mut Rng) -> GemmSpec {
    let dim = |rng: &mut Rng| match rng.below(8) {
        0 => 1,
        1 => 2,
        _ => rng.range(3, 40),
    };
    let op = |rng: &mut Rng| if rng.chance(0.5) { Op::T } else { Op::N };
    let scalar = |rng: &mut Rng| match rng.below(3) {
        0 => 1.0,
        1 => 0.0,
        _ => rng.unit() * 2.0,
    };
    GemmSpec::new(op(rng), op(rng), dim(rng), dim(rng), dim(rng))
        .with_scalars(scalar(rng), scalar(rng))
}

fn random_srumma(rng: &mut Rng) -> SrummaOptions {
    SrummaOptions {
        smp_first: rng.chance(0.5),
        diagonal_shift: rng.chance(0.5),
        double_buffer: rng.chance(0.75),
        prefetch_depth: rng.range(1, 3),
        shmem: *rng.pick(&[
            ShmemFlavor::Auto,
            ShmemFlavor::ForceCopy,
            ShmemFlavor::ForceDirect,
        ]),
        gemm: None,
        tuner: None,
    }
}

/// Per-element absolute tolerance: each C element is a k-term dot
/// product, so the roundoff budget grows with k.
fn tolerance(k: usize) -> f64 {
    1e-12 * (k.max(1) as f64) * 100.0
}

/// Which backend a property case runs on.
#[derive(Clone, Copy, Debug)]
enum Backend {
    /// One OS thread per rank (`ThreadComm`).
    Threads,
    /// Virtual-time simulator (`SimComm`).
    Sim,
    /// Work-stealing executor: ranks multiplexed onto a random worker
    /// pool (often oversubscribed).
    Exec,
}

/// `β·C + α·op(A)·op(B)` with a random nonzero starting C, checked
/// against the serial kernel run on the same inputs.
fn check_case(seed: u64, backend: Backend, test: &str) {
    let mut rng = Rng::new(seed);
    let spec = random_spec(&mut rng);
    let nranks = *rng.pick(&[1usize, 2, 3, 4, 6, 8]);
    let a = Matrix::random(spec.m, spec.k, seed ^ 0xA);
    let b = Matrix::random(spec.k, spec.n, seed ^ 0xB);

    // The drivers start C at zero, so the serial reference must apply
    // the same alpha (beta scales zeros away).
    let mut expect = serial_reference(&spec, &a, &b);
    for i in 0..spec.m {
        for j in 0..spec.n {
            expect[(i, j)] *= spec.alpha;
        }
    }

    let alg = if rng.chance(0.7) {
        Algorithm::Srumma(random_srumma(&mut rng))
    } else if spec.alpha == 1.0 && rng.chance(0.5) {
        Algorithm::summa_default()
    } else {
        Algorithm::Srumma(random_srumma(&mut rng))
    };

    let c = match backend {
        Backend::Threads => multiply_threads(nranks, &alg, &spec, &a, &b).0,
        Backend::Sim => multiply_verified(&Machine::linux_myrinet(), nranks, &alg, &spec, &a, &b).0,
        Backend::Exec => {
            // Workers chosen independently of ranks: frequently an
            // oversubscribed pool, sometimes more workers than ranks.
            let workers = *rng.pick(&[1usize, 2, 3, 4]);
            multiply_exec(nranks, workers, &alg, &spec, &a, &b).0
        }
    };
    let diff = max_abs_diff(&c, &expect);
    assert!(
        diff < tolerance(spec.k),
        "seed {seed:#x}: {} {} m={} n={} k={} alpha={} beta={} x{nranks} ({backend:?}): |diff|={diff:e}\n{}",
        alg.name(),
        spec.case_label(),
        spec.m,
        spec.n,
        spec.k,
        spec.alpha,
        spec.beta,
        prop_rerun(seed, test),
    );
}

/// Random logical masks for the grid of `nranks`: mostly mid-density,
/// with the degenerate ends (density 0 — everything pruned, every rank
/// exercises the empty-rank fence path — and density 1 — the mask is
/// all-ones and must change nothing) drawn often enough to hit every
/// run.
fn random_masks(rng: &mut Rng, nranks: usize, seed: u64) -> SparseMasks {
    let grid = default_grid(nranks);
    let density = |rng: &mut Rng| match rng.below(5) {
        0 => 0.0,
        1 => 1.0,
        _ => 0.2 + 0.15 * rng.below(4) as f64,
    };
    SparseMasks::new(
        BlockMask::random(grid.p, grid.q, density(rng), seed ^ 0xAAAA),
        BlockMask::random(grid.p, grid.q, density(rng), seed ^ 0xBBBB),
    )
}

/// Block-sparse multiply on each backend, checked against the masked
/// serial reference. The operands carry full random data *everywhere*
/// — including inside masked blocks — so agreement proves the pruned
/// schedule never reads a dead block.
fn check_sparse_case(seed: u64, backend: Backend, test: &str) {
    let mut rng = Rng::new(seed);
    let spec = random_spec(&mut rng);
    let nranks = *rng.pick(&[1usize, 2, 3, 4, 6, 8]);
    let a = Matrix::random(spec.m, spec.k, seed ^ 0xA);
    let b = Matrix::random(spec.k, spec.n, seed ^ 0xB);
    let masks = random_masks(&mut rng, nranks, seed);
    let opts = random_srumma(&mut rng);

    // Drivers start C at zero, so beta scales zeros away and the
    // reference only needs alpha.
    let mut expect = sparse_serial_reference(&spec, &a, &b, &masks);
    for i in 0..spec.m {
        for j in 0..spec.n {
            expect[(i, j)] *= spec.alpha;
        }
    }

    let c = match backend {
        Backend::Threads => multiply_threads_sparse(nranks, &opts, &spec, &a, &b, &masks).0,
        Backend::Sim => {
            multiply_verified_sparse(
                &Machine::linux_myrinet(),
                nranks,
                &opts,
                &spec,
                &a,
                &b,
                &masks,
            )
            .0
        }
        Backend::Exec => {
            let workers = *rng.pick(&[1usize, 2, 3, 4]);
            multiply_exec_sparse(nranks, workers, &opts, &spec, &a, &b, &masks).0
        }
    };
    let diff = max_abs_diff(&c, &expect);
    assert!(
        diff < tolerance(spec.k),
        "seed {seed:#x}: sparse {} m={} n={} k={} alpha={} beta={} x{nranks} ({backend:?}) \
         da={:.2} db={:.2}: |diff|={diff:e}\n{}",
        spec.case_label(),
        spec.m,
        spec.n,
        spec.k,
        spec.alpha,
        spec.beta,
        masks.a.as_ref().map_or(1.0, |m| m.density()),
        masks.b.as_ref().map_or(1.0, |m| m.density()),
        prop_rerun(seed, test),
    );
}

#[test]
fn threads_match_serial_reference_on_random_problems() {
    for seed in prop_seeds(0xE2E_7EAD, CASES) {
        check_case(
            seed,
            Backend::Threads,
            "threads_match_serial_reference_on_random_problems",
        );
    }
}

#[test]
fn simulator_matches_serial_reference_on_random_problems() {
    for seed in prop_seeds(0xE2E_0512, CASES) {
        check_case(
            seed,
            Backend::Sim,
            "simulator_matches_serial_reference_on_random_problems",
        );
    }
}

#[test]
fn executor_matches_serial_reference_on_random_problems() {
    for seed in prop_seeds(0xE2E_0EC5, CASES) {
        check_case(
            seed,
            Backend::Exec,
            "executor_matches_serial_reference_on_random_problems",
        );
    }
}

#[test]
fn sparse_threads_match_masked_serial_reference() {
    for seed in prop_seeds(0x5BA_57EAD, CASES) {
        check_sparse_case(
            seed,
            Backend::Threads,
            "sparse_threads_match_masked_serial_reference",
        );
    }
}

#[test]
fn sparse_simulator_matches_masked_serial_reference() {
    for seed in prop_seeds(0x5BA_50512, CASES) {
        check_sparse_case(
            seed,
            Backend::Sim,
            "sparse_simulator_matches_masked_serial_reference",
        );
    }
}

#[test]
fn sparse_executor_matches_masked_serial_reference() {
    for seed in prop_seeds(0x5BA_50EC5, CASES) {
        check_sparse_case(
            seed,
            Backend::Exec,
            "sparse_executor_matches_masked_serial_reference",
        );
    }
}

/// Full-density masks are all-ones: the sparse path prunes nothing and
/// must reproduce the dense driver **bitwise** on every backend (each
/// rank's accumulation order is deterministic, so equality is exact,
/// not within tolerance).
#[test]
fn density_one_is_bitwise_identical_to_dense() {
    for &(seed, nranks) in &[(11u64, 3usize), (12, 4), (13, 8)] {
        let mut rng = Rng::new(seed);
        let spec = random_spec(&mut rng);
        let a = Matrix::random(spec.m, spec.k, seed ^ 0xA);
        let b = Matrix::random(spec.k, spec.n, seed ^ 0xB);
        let grid = default_grid(nranks);
        let masks = SparseMasks::new(
            BlockMask::full(grid.p, grid.q),
            BlockMask::full(grid.p, grid.q),
        );
        let opts = random_srumma(&mut rng);
        let alg = Algorithm::Srumma(opts);

        let (dense_t, _) = multiply_threads(nranks, &alg, &spec, &a, &b);
        let (sparse_t, _) = multiply_threads_sparse(nranks, &opts, &spec, &a, &b, &masks);
        assert_eq!(
            max_abs_diff(&dense_t, &sparse_t),
            0.0,
            "threads seed {seed}"
        );

        let machine = Machine::linux_myrinet();
        let (dense_s, _) = multiply_verified(&machine, nranks, &alg, &spec, &a, &b);
        let (sparse_s, _) =
            multiply_verified_sparse(&machine, nranks, &opts, &spec, &a, &b, &masks);
        assert_eq!(max_abs_diff(&dense_s, &sparse_s), 0.0, "sim seed {seed}");

        let (dense_e, dres) = multiply_exec(nranks, 2, &alg, &spec, &a, &b);
        let (sparse_e, sres) = multiply_exec_sparse(nranks, 2, &opts, &spec, &a, &b, &masks);
        assert_eq!(max_abs_diff(&dense_e, &sparse_e), 0.0, "exec seed {seed}");
        for (rank, (d, s)) in dres.outputs.iter().zip(&sres.outputs).enumerate() {
            let d = d.as_ref().unwrap();
            assert_eq!(
                s.tasks, d.tasks,
                "rank {rank}: full mask changed the schedule"
            );
            assert_eq!(s.masked_tasks, 0, "rank {rank}: full mask pruned a task");
        }
    }
}

/// A single surviving block in each operand: only the tasks whose
/// k-segments join them may run; everything else — including whole
/// ranks — is pruned, and those empty ranks must still clear their C
/// tiles and reach every fence.
#[test]
fn one_surviving_block_per_operand() {
    for ta in [Op::N, Op::T] {
        for tb in [Op::N, Op::T] {
            let spec = GemmSpec::new(ta, tb, 19, 17, 23).with_scalars(1.5, 0.0);
            let nranks = 6;
            let grid = default_grid(nranks);
            let a = Matrix::random(spec.m, spec.k, 0xC0);
            let b = Matrix::random(spec.k, spec.n, 0xC1);
            let masks = SparseMasks::new(
                BlockMask::from_fn(grid.p, grid.q, |i, la| (i, la) == (1, 0)),
                BlockMask::from_fn(grid.p, grid.q, |lb, j| (lb, j) == (0, 1)),
            );
            let mut expect = sparse_serial_reference(&spec, &a, &b, &masks);
            for i in 0..spec.m {
                for j in 0..spec.n {
                    expect[(i, j)] *= spec.alpha;
                }
            }
            let opts = SrummaOptions::default();
            let (c, res) = multiply_exec_sparse(nranks, 2, &opts, &spec, &a, &b, &masks);
            let diff = max_abs_diff(&c, &expect);
            assert!(diff < tolerance(spec.k), "{ta:?}/{tb:?}: |diff|={diff:e}");
            let survived: usize = res.outputs.iter().map(|r| r.tasks).sum();
            let masked: usize = res.outputs.iter().map(|r| r.masked_tasks).sum();
            assert!(survived <= nranks, "{ta:?}/{tb:?}: too many tasks survived");
            assert!(masked > 0, "{ta:?}/{tb:?}: nothing was pruned");
        }
    }
}

/// The oversubscription stress from the dense suite, sparse: 128 ranks
/// multiplexed onto 2 workers with mid-density masks. Many ranks have
/// every task pruned and exist only to β-scale C and arrive at the
/// barriers — a lost wakeup or skipped fence deadlocks here (ci.sh
/// bounds that with `timeout`).
#[test]
fn oversubscribed_sparse_executor_128_ranks_2_workers() {
    let (nranks, workers) = (128, 2);
    let spec = GemmSpec::square(64);
    let grid = default_grid(nranks);
    let a = Matrix::random(spec.m, spec.k, 0xD0);
    let b = Matrix::random(spec.k, spec.n, 0xD1);
    let masks = SparseMasks::new(
        BlockMask::random(grid.p, grid.q, 0.3, 0xD2),
        BlockMask::random(grid.p, grid.q, 0.3, 0xD3),
    );
    let expect = sparse_serial_reference(&spec, &a, &b, &masks);
    let opts = SrummaOptions::default();
    let (c, res) = multiply_exec_sparse(nranks, workers, &opts, &spec, &a, &b, &masks);
    let diff = max_abs_diff(&c, &expect);
    assert!(diff < tolerance(spec.k), "|diff|={diff:e}");
    let masked: usize = res.outputs.iter().map(|r| r.masked_tasks).sum();
    assert!(
        masked > 0,
        "density 0.3 masks pruned nothing on a 128-rank grid"
    );
}
