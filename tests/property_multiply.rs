//! Property test: all three backends agree with the serial kernel over
//! randomized problems — shapes (including degenerate ones), transpose
//! cases, PBLAS scalars, rank counts, worker-pool sizes and SRUMMA
//! scheduling options.
//!
//! Seeds are deterministic (SplitMix64) and embedded in every assertion
//! message, so a failure reproduces by running the named case alone.

use srumma::core::driver::{multiply_exec, multiply_threads, multiply_verified, serial_reference};
use srumma::dense::{max_abs_diff, Rng};
use srumma::{Algorithm, GemmSpec, Machine, Matrix, Op, ShmemFlavor, SrummaOptions};

const CASES: u64 = 24;

fn random_spec(rng: &mut Rng) -> GemmSpec {
    let dim = |rng: &mut Rng| match rng.below(8) {
        0 => 1,
        1 => 2,
        _ => rng.range(3, 40),
    };
    let op = |rng: &mut Rng| if rng.chance(0.5) { Op::T } else { Op::N };
    let scalar = |rng: &mut Rng| match rng.below(3) {
        0 => 1.0,
        1 => 0.0,
        _ => rng.unit() * 2.0,
    };
    GemmSpec::new(op(rng), op(rng), dim(rng), dim(rng), dim(rng))
        .with_scalars(scalar(rng), scalar(rng))
}

fn random_srumma(rng: &mut Rng) -> SrummaOptions {
    SrummaOptions {
        smp_first: rng.chance(0.5),
        diagonal_shift: rng.chance(0.5),
        double_buffer: rng.chance(0.75),
        prefetch_depth: rng.range(1, 3),
        shmem: *rng.pick(&[
            ShmemFlavor::Auto,
            ShmemFlavor::ForceCopy,
            ShmemFlavor::ForceDirect,
        ]),
    }
}

/// Per-element absolute tolerance: each C element is a k-term dot
/// product, so the roundoff budget grows with k.
fn tolerance(k: usize) -> f64 {
    1e-12 * (k.max(1) as f64) * 100.0
}

/// Which backend a property case runs on.
#[derive(Clone, Copy, Debug)]
enum Backend {
    /// One OS thread per rank (`ThreadComm`).
    Threads,
    /// Virtual-time simulator (`SimComm`).
    Sim,
    /// Work-stealing executor: ranks multiplexed onto a random worker
    /// pool (often oversubscribed).
    Exec,
}

/// `β·C + α·op(A)·op(B)` with a random nonzero starting C, checked
/// against the serial kernel run on the same inputs.
fn check_case(seed: u64, backend: Backend) {
    let mut rng = Rng::new(seed);
    let spec = random_spec(&mut rng);
    let nranks = *rng.pick(&[1usize, 2, 3, 4, 6, 8]);
    let a = Matrix::random(spec.m, spec.k, seed ^ 0xA);
    let b = Matrix::random(spec.k, spec.n, seed ^ 0xB);

    // The drivers start C at zero, so the serial reference must apply
    // the same alpha (beta scales zeros away).
    let mut expect = serial_reference(&spec, &a, &b);
    for i in 0..spec.m {
        for j in 0..spec.n {
            expect[(i, j)] *= spec.alpha;
        }
    }

    let alg = if rng.chance(0.7) {
        Algorithm::Srumma(random_srumma(&mut rng))
    } else if spec.alpha == 1.0 && rng.chance(0.5) {
        Algorithm::summa_default()
    } else {
        Algorithm::Srumma(random_srumma(&mut rng))
    };

    let c = match backend {
        Backend::Threads => multiply_threads(nranks, &alg, &spec, &a, &b).0,
        Backend::Sim => multiply_verified(&Machine::linux_myrinet(), nranks, &alg, &spec, &a, &b).0,
        Backend::Exec => {
            // Workers chosen independently of ranks: frequently an
            // oversubscribed pool, sometimes more workers than ranks.
            let workers = *rng.pick(&[1usize, 2, 3, 4]);
            multiply_exec(nranks, workers, &alg, &spec, &a, &b).0
        }
    };
    let diff = max_abs_diff(&c, &expect);
    assert!(
        diff < tolerance(spec.k),
        "seed {seed:#x}: {} {} m={} n={} k={} alpha={} beta={} x{nranks} ({backend:?}): |diff|={diff:e}",
        alg.name(),
        spec.case_label(),
        spec.m,
        spec.n,
        spec.k,
        spec.alpha,
        spec.beta,
    );
}

#[test]
fn threads_match_serial_reference_on_random_problems() {
    for case in 0..CASES {
        check_case(0xE2E_7EAD + case, Backend::Threads);
    }
}

#[test]
fn simulator_matches_serial_reference_on_random_problems() {
    for case in 0..CASES {
        check_case(0xE2E_0512 + case, Backend::Sim);
    }
}

#[test]
fn executor_matches_serial_reference_on_random_problems() {
    for case in 0..CASES {
        check_case(0xE2E_0EC5 + case, Backend::Exec);
    }
}
